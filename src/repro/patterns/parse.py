"""Parser for tree-pattern formulae.

Concrete syntax (whitespace-insensitive)::

    pattern  := '//' pattern
              | atom ( '[' pattern (',' pattern)* ']' )?
    atom     := label ( '(' binding (',' binding)* ')' )?
    label    := NAME | '_'
    binding  := '@' NAME '=' (NAME | STRING)

A binding right-hand side that is a bare ``NAME`` is a variable; a quoted
string (single or double quotes) is a constant.  Examples (from the paper)::

    db[book(@title=x)[author(@name=y)]]                      # Example 3.4, source side
    bib[writer(@name=y)[work(@title=x, @year=z)]]            # Example 3.4, target side
    //author(@name="Papadimitriou")
    _(@a1=x, @a2=x)
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from .formula import (AttributeFormula, DescendantPattern, NodePattern, Term,
                      TreePattern, Variable, WILDCARD)

__all__ = ["parse_pattern", "PatternParseError"]


class PatternParseError(ValueError):
    """Raised when a tree-pattern string cannot be parsed."""


_TOKEN_RE = re.compile(
    r"\s*(?:(?P<dslash>//)|(?P<name>[\w.\-]+)|(?P<string>\"[^\"]*\"|'[^']*')"
    r"|(?P<op>[@\[\](),=_]))"
)


class _Tokens:
    def __init__(self, text: str) -> None:
        self.items: List[Tuple[str, str]] = []
        pos = 0
        while pos < len(text):
            match = _TOKEN_RE.match(text, pos)
            if not match or match.end() == pos:
                remainder = text[pos:].strip()
                if not remainder:
                    break
                raise PatternParseError(f"cannot tokenise pattern near {remainder!r}")
            if match.group("dslash"):
                self.items.append(("dslash", "//"))
            elif match.group("name"):
                self.items.append(("name", match.group("name")))
            elif match.group("string"):
                self.items.append(("string", match.group("string")[1:-1]))
            else:
                self.items.append(("op", match.group("op")))
            pos = match.end()
        self.index = 0

    def peek(self) -> Optional[Tuple[str, str]]:
        if self.index < len(self.items):
            return self.items[self.index]
        return None

    def take(self, expected: Optional[str] = None) -> Tuple[str, str]:
        token = self.peek()
        if token is None:
            raise PatternParseError("unexpected end of pattern")
        if expected is not None and token[1] != expected:
            raise PatternParseError(f"expected {expected!r}, found {token[1]!r}")
        self.index += 1
        return token


def parse_pattern(text: str) -> TreePattern:
    """Parse a tree-pattern formula from its textual form."""
    tokens = _Tokens(text)
    pattern = _parse(tokens)
    if tokens.peek() is not None:
        raise PatternParseError(f"trailing input at {tokens.peek()[1]!r} in {text!r}")
    return pattern


def _parse(tokens: _Tokens) -> TreePattern:
    token = tokens.peek()
    if token is None:
        raise PatternParseError("empty pattern")
    if token[0] == "dslash":
        tokens.take()
        return DescendantPattern(_parse(tokens))
    attribute = _parse_atom(tokens)
    children: List[TreePattern] = []
    if tokens.peek() == ("op", "["):
        tokens.take("[")
        children.append(_parse(tokens))
        while tokens.peek() == ("op", ","):
            tokens.take(",")
            children.append(_parse(tokens))
        tokens.take("]")
    return NodePattern(attribute, tuple(children))


def _parse_atom(tokens: _Tokens) -> AttributeFormula:
    kind, value = tokens.take()
    if kind == "op" and value == "_":
        label = WILDCARD
    elif kind == "name":
        label = value if value != "_" else WILDCARD
    else:
        raise PatternParseError(f"expected an element type or '_', found {value!r}")
    assignments: List[Tuple[str, Term]] = []
    if tokens.peek() == ("op", "("):
        tokens.take("(")
        assignments.append(_parse_binding(tokens))
        while tokens.peek() == ("op", ","):
            tokens.take(",")
            assignments.append(_parse_binding(tokens))
        tokens.take(")")
    return AttributeFormula(label, tuple(assignments))


def _parse_binding(tokens: _Tokens) -> Tuple[str, Term]:
    tokens.take("@")
    kind, name = tokens.take()
    if kind != "name":
        raise PatternParseError(f"expected attribute name after '@', found {name!r}")
    tokens.take("=")
    kind, value = tokens.take()
    if kind == "name":
        return name, Variable(value)
    if kind == "string":
        return name, value
    raise PatternParseError(f"expected a variable or string constant, found {value!r}")
