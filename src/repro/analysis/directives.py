"""``# repro-lint`` directive parsing (suppressions and module markers).

Suppressions are *loud by design*: every ``disable`` must carry a reason,
and ReproLint's strict mode reports suppressions that no longer suppress
anything, so the inventory of exceptions cannot silently rot.

Syntax (one directive per comment)::

    x = blocking_call()  # repro-lint: disable=RL001 -- reason why this is fine
    # repro-lint: disable=RL001,RL004 -- reason (covers the next statement line)
    # repro-lint: parity-oracle -- this module IS the interpreted oracle

* ``disable=RLxxx[,RLyyy]`` suppresses those rules on the directive's own
  line; a *standalone* comment (nothing but whitespace before the ``#``)
  instead covers the next line that holds code.
* ``parity-oracle`` marks the whole module as an interpreter/functional-API
  parity oracle, exempting it from the layering rule RL003.
* The reason after ``--`` is mandatory.  A reasonless or malformed
  directive does **not** suppress anything and is itself reported as RL000.

Directives are read from the token stream (:mod:`tokenize`), so comment
look-alikes inside string literals are never misparsed.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["Directive", "DirectiveSet", "parse_directives",
           "BAD_DIRECTIVE_RULE", "KNOWN_RULE_PATTERN"]

#: Rule id reserved for directive problems (bad syntax, missing reason,
#: unknown rule ids, unused suppressions in strict mode).
BAD_DIRECTIVE_RULE = "RL000"

#: What a rule id looks like; unknown-but-well-formed ids are reported so a
#: typo (``RL101`` for ``RL001``) cannot silently disable nothing.
KNOWN_RULE_PATTERN = re.compile(r"^RL\d{3}$")

_DIRECTIVE = re.compile(r"#\s*repro-lint\s*:\s*(?P<body>.*)$")
_DISABLE = re.compile(r"^disable\s*=\s*(?P<codes>[A-Za-z0-9, ]+?)"
                      r"\s*(?:--\s*(?P<reason>.*\S))?$")
_ORACLE = re.compile(r"^parity-oracle\s*(?:--\s*(?P<reason>.*\S))?$")


@dataclass
class Directive:
    """One parsed ``# repro-lint: disable=...`` comment."""

    line: int                      #: line the comment sits on (1-based)
    covers: int                    #: line whose findings it suppresses
    codes: Tuple[str, ...]
    reason: str
    used: bool = False             #: flipped when it suppresses a finding


@dataclass
class DirectiveSet:
    """Every directive of one module, plus the problems found parsing them."""

    directives: List[Directive] = field(default_factory=list)
    #: ``(line, col, message)`` triples for malformed/reasonless directives.
    problems: List[Tuple[int, int, str]] = field(default_factory=list)
    parity_oracle: bool = False
    parity_oracle_reason: str = ""

    def suppresses(self, rule_id: str, line: int) -> bool:
        """True (and mark the directive used) when ``rule_id`` findings on
        ``line`` are covered by a reasoned ``disable``."""
        hit = False
        for directive in self.directives:
            if directive.covers == line and rule_id in directive.codes:
                directive.used = True
                hit = True
        return hit

    def unused(self) -> List[Directive]:
        """Suppressions that never matched a finding (strict-mode fodder)."""
        return [d for d in self.directives if not d.used]


def _covered_line(comment_line: int, standalone: bool,
                  code_lines: List[int]) -> int:
    """The line a directive applies to: its own, or — for a standalone
    comment — the next line that actually holds code."""
    if not standalone:
        return comment_line
    for line in code_lines:
        if line > comment_line:
            return line
    return comment_line


def parse_directives(source: str) -> DirectiveSet:
    """Extract every ``# repro-lint`` directive from ``source``."""
    out = DirectiveSet()
    comments: List[Tuple[int, int, str, bool]] = []
    code_lines: List[int] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return out  # the analyzer reports the parse failure separately
    for token in tokens:
        if token.type == tokenize.COMMENT:
            standalone = not token.line[:token.start[1]].strip()
            comments.append((token.start[0], token.start[1], token.string,
                             standalone))
        elif token.type not in (tokenize.NL, tokenize.NEWLINE,
                                tokenize.INDENT, tokenize.DEDENT,
                                tokenize.ENDMARKER, tokenize.COMMENT):
            if not code_lines or code_lines[-1] != token.start[0]:
                code_lines.append(token.start[0])

    for line, col, text, standalone in comments:
        match = _DIRECTIVE.search(text)
        if match is None:
            continue
        body = match.group("body").strip()
        oracle = _ORACLE.match(body)
        if oracle is not None:
            if not oracle.group("reason"):
                out.problems.append(
                    (line, col, "parity-oracle marker needs a reason: "
                     "`# repro-lint: parity-oracle -- why`"))
                continue
            out.parity_oracle = True
            out.parity_oracle_reason = oracle.group("reason")
            continue
        disable = _DISABLE.match(body)
        if disable is None:
            out.problems.append(
                (line, col, f"unrecognised repro-lint directive {body!r}; "
                 "expected `disable=RLxxx[,RLyyy] -- reason` or "
                 "`parity-oracle -- reason`"))
            continue
        codes = tuple(code.strip() for code in
                      disable.group("codes").split(",") if code.strip())
        reason = disable.group("reason") or ""
        bad = [code for code in codes
               if not KNOWN_RULE_PATTERN.match(code)]
        if bad:
            out.problems.append(
                (line, col,
                 f"malformed rule id(s) {', '.join(bad)} in disable "
                 "directive (expected RLxxx)"))
            continue
        if not reason:
            out.problems.append(
                (line, col,
                 f"suppression of {', '.join(codes)} has no reason; write "
                 "`disable=" + ",".join(codes) + " -- why this is safe` "
                 "(reasonless suppressions do not suppress)"))
            continue
        out.directives.append(Directive(
            line=line, covers=_covered_line(line, standalone, code_lines),
            codes=codes, reason=reason))
    return out


def validate_codes(directives: DirectiveSet,
                   known: Dict[str, object]) -> List[Tuple[int, int, str]]:
    """Problems for well-formed-but-unknown rule ids (e.g. ``RL042``)."""
    problems: List[Tuple[int, int, str]] = []
    for directive in directives.directives:
        unknown = [code for code in directive.codes
                   if code not in known and code != BAD_DIRECTIVE_RULE]
        if unknown:
            problems.append(
                (directive.line, 0,
                 f"disable names unknown rule(s) {', '.join(unknown)}; "
                 f"known rules: {', '.join(sorted(known))}"))
    return problems
