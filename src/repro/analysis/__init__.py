"""ReproLint: domain-aware static analysis for this repository.

Two prongs, both dependency-free (stdlib :mod:`ast`/:mod:`tokenize`):

* the **invariant linter** (``python -m repro.analysis``) — pluggable
  ``RLxxx`` rules that enforce the ROADMAP's standing conventions at
  commit time (event-loop hygiene, lock discipline, layering around the
  parity oracles, cache-counter accounting, generator determinism);
  see :mod:`repro.analysis.rules` and the rule catalogue in ROADMAP.md;
* the **plan verifier** (:func:`verify_plan`, CLI
  ``python -m repro.analysis.plancheck``) — an abstract interpreter that
  proves slot def-before-use, width uniformity, label/attr validity and
  projection-scope consistency for every compiled
  :class:`~repro.patterns.plan.PatternPlan` / ``QueryPlan``; with
  ``REPRO_PLAN_VERIFY=1`` it runs automatically inside
  ``compile_pattern``/``compile_query``.

Suppressions: ``# repro-lint: disable=RLxxx -- reason`` (the reason is
mandatory; strict mode also reports suppressions that no longer match).
"""

from .core import (Finding, ModuleContext, Rule, analyze_file,
                   analyze_source, run)
from .rules import ALL_RULES

__all__ = ["Finding", "ModuleContext", "Rule", "ALL_RULES",
           "analyze_file", "analyze_source", "run",
           "PlanVerificationError", "verify_plan"]


def __getattr__(name):
    # Lazy (PEP 562): `python -m repro.analysis.plancheck` would otherwise
    # warn about the submodule already sitting in sys.modules.
    if name in ("PlanVerificationError", "verify_plan"):
        from . import plancheck
        return getattr(plancheck, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
