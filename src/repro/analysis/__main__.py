"""CLI: ``python -m repro.analysis [paths ...] [--strict] [--summary P]``.

Walks the given paths (default: ``src tests benchmarks examples``, those
that exist) with every registered rule and prints findings as
``path:line:col RLxxx message``.  Exit status is non-zero when anything
is found.  ``--strict`` additionally reports unused suppressions — the CI
lint job runs ``--strict`` so the suppression inventory cannot rot.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .core import collect_files, run, summary_markdown
from .rules import ALL_RULES

_DEFAULT_PATHS = ("src", "tests", "benchmarks", "examples")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="ReproLint: domain-invariant static analysis "
                    "(see ROADMAP.md, 'Static analysis').")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to analyze "
                             f"(default: {' '.join(_DEFAULT_PATHS)})")
    parser.add_argument("--strict", action="store_true",
                        help="also fail on unused suppressions")
    parser.add_argument("--summary", default=None, metavar="PATH",
                        help="append a markdown summary (e.g. "
                             "$GITHUB_STEP_SUMMARY)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.id}  {rule.title}")
            print(f"       {rule.rationale}")
        return 0

    if args.paths:
        paths = [Path(path) for path in args.paths]
    else:
        paths = [Path(path) for path in _DEFAULT_PATHS
                 if Path(path).exists()]
    missing = [path for path in paths if not path.exists()]
    if missing:
        print("repro-lint: no such path(s): "
              + ", ".join(str(path) for path in missing), file=sys.stderr)
        return 2

    findings = run(paths, ALL_RULES, strict=args.strict)
    checked = len(collect_files(paths))
    for finding in findings:
        print(finding.format())
    print(f"repro-lint: {checked} files checked, "
          f"{len(findings)} finding(s)"
          + (" [strict]" if args.strict else ""))
    if args.summary:
        with open(args.summary, "a", encoding="utf-8") as handle:
            handle.write(summary_markdown(findings, ALL_RULES, checked))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
