"""Static verification of compiled evaluation plans.

:func:`verify_plan` is an abstract interpreter over the op sequences of
:class:`~repro.patterns.plan.PatternPlan` and
:class:`~repro.patterns.plan.QueryPlan`: instead of running a plan on a
tree, it *proves* structural invariants that the evaluator silently
assumes — a violated one does not crash, it returns wrong answers:

* **slot def-before-use** — every ``desc`` op references a strictly
  earlier inner op, every ``node`` op's children are strictly earlier
  (the single bottom-up pass fills tables in op order);
* **slot-range validity** — every variable test binds a slot inside the
  plan's row width, slot assignments are injective per scope;
* **uniform row width** — every atom under a ``_Join``/``_Union`` carries
  the query-global width (what ``_fix_widths`` stamps), so slot-merge
  joins never index past a row;
* **label/attr validity against the compiling query** — ops only test
  labels and attribute names that occur in the source pattern (the specs
  are interned per tree at evaluation time; a foreign label would
  silently disable or misdirect an op);
* **projection-scope consistency** — ``_Project`` clears only in-width
  slots and never a slot the whole query exports as free;
* **shape mirror** — the lowered operator tree is isomorphic to the query
  AST (atom ↔ pattern, join ↔ conjunction, project ↔ ∃, union ↔ ∪);
* **join-program alignment** — the structural-join program derived at
  compile time is index-aligned with the recurrence ops, every staircase
  join ranges over a strictly earlier node op's table (interval-input
  monotonicity), every node entry carries exactly one spec per child
  (width uniformity across join arms), and every collapsed ``//`` chain
  re-collapses to the recorded ``(inner, k)`` with ``k ≥ 1``.

Compile-time hook: with ``REPRO_PLAN_VERIFY=1`` (the test suite's
default, see ``tests/conftest.py``) every ``compile_pattern`` /
``compile_query`` runs :func:`verify_plan` once and stamps
``plan.verified = True``.  The stamp travels through pickle, so plans
shipped to process-pool workers inside compiled settings are **not**
re-verified on unpickle — the worker path pays zero verification
overhead.

CLI: ``python -m repro.analysis.plancheck`` compiles the committed
workload settings (their STD source plans) plus their canned queries and
verifies every plan — the CI lint job runs it next to the invariant
linter.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = ["PlanVerificationError", "verify_plan", "main"]


class PlanVerificationError(ValueError):
    """A compiled plan violates a structural invariant.

    ``context`` names the op / node at fault; the message states the
    violated invariant.
    """

    def __init__(self, message: str, context: str = "") -> None:
        super().__init__(f"{context}: {message}" if context else message)
        self.context = context


def _fail(message: str, context: str = "") -> None:
    raise PlanVerificationError(message, context)


# --------------------------------------------------------------------- #
# Pattern-level checks
# --------------------------------------------------------------------- #

def _pattern_alphabet(pattern: Any) -> Tuple[Set[str], Set[str], int, int]:
    """``(labels, attr_names, node_count, desc_count)`` of a pattern AST."""
    from ..patterns.formula import DescendantPattern, NodePattern
    labels: Set[str] = set()
    attrs: Set[str] = set()
    nodes = descs = 0
    stack = [pattern]
    while stack:
        current = stack.pop()
        if isinstance(current, DescendantPattern):
            descs += 1
            stack.append(current.inner)
            continue
        if not isinstance(current, NodePattern):
            _fail(f"unknown pattern node {type(current).__name__}",
                  "pattern")
        nodes += 1
        if not current.attribute.is_wildcard():
            labels.add(current.attribute.label)
        for attr_name, _term in current.attribute.assignments:
            attrs.add(attr_name)
        stack.extend(current.children)
    return labels, attrs, nodes, descs


def _verify_ops(ops: Sequence[tuple], width: int, labels: Set[str],
                attrs: Set[str], context: str) -> Tuple[int, int]:
    """Structural induction over one op sequence; returns op-kind counts."""
    if not isinstance(ops, tuple) or not ops:
        _fail("ops must be a non-empty tuple", context)
    node_ops = desc_ops = 0
    for index, op in enumerate(ops):
        where = f"{context} op[{index}]"
        if not isinstance(op, tuple) or not op:
            _fail("op is not a non-empty tuple", where)
        kind = op[0]
        if kind == "desc":
            desc_ops += 1
            if len(op) != 2:
                _fail(f"desc op has arity {len(op)}, expected 2", where)
            inner = op[1]
            if not isinstance(inner, int) or not 0 <= inner < index:
                _fail(f"desc op references inner op {inner!r}; must "
                      f"reference a strictly earlier op (< {index}) so the "
                      "bottom-up pass sees it defined", where)
            continue
        if kind != "node":
            _fail(f"unknown op kind {kind!r}", where)
        node_ops += 1
        if len(op) != 5:
            _fail(f"node op has arity {len(op)}, expected 5", where)
        _, label, const_tests, var_tests, child_indexes = op
        if label is not None:
            if not isinstance(label, str):
                _fail(f"label {label!r} is not a str or None", where)
            if label not in labels:
                _fail(f"label {label!r} does not occur in the compiling "
                      "pattern — the op can never have been lowered from "
                      "it", where)
        for attr_name, _constant in const_tests:
            if attr_name not in attrs:
                _fail(f"constant test on attribute {attr_name!r} absent "
                      "from the compiling pattern", where)
        for attr_name, slot in var_tests:
            if attr_name not in attrs:
                _fail(f"variable test on attribute {attr_name!r} absent "
                      "from the compiling pattern", where)
            if not isinstance(slot, int) or not 0 <= slot < width:
                _fail(f"variable test binds slot {slot!r} outside row "
                      f"width {width}", where)
        for child in child_indexes:
            if not isinstance(child, int) or not 0 <= child < index:
                _fail(f"child op index {child!r} is not strictly earlier "
                      f"than {index} (def-before-use)", where)
    return node_ops, desc_ops


def _verify_join_ops(ops: Sequence[tuple], join_ops: Any,
                     context: str) -> None:
    """The structural-join program must mirror the recurrence ops.

    ``join_ops`` is derived once at compile time
    (:func:`repro.patterns.plan._derive_join_ops`); the evaluator trusts
    it blindly, so this check re-derives every entry and proves the
    interval-join invariants the staircase ranges assume.
    """
    if not isinstance(join_ops, tuple):
        _fail(f"join program is {type(join_ops).__name__}, expected tuple",
              context)
    if len(join_ops) != len(ops):
        _fail(f"join program has {len(join_ops)} entries for {len(ops)} "
              "ops (index alignment broken)", context)

    def collapse(index: int) -> Tuple[int, int]:
        hops = 0
        while ops[index][0] == "desc":
            hops += 1
            index = ops[index][1]
        return index, hops

    for index, (op, jop) in enumerate(zip(ops, join_ops)):
        where = f"{context} join_op[{index}]"
        if not isinstance(jop, tuple) or not jop or jop[0] != op[0]:
            _fail(f"join entry {jop!r} does not mirror op kind {op[0]!r}",
                  where)
        if op[0] == "desc":
            if len(jop) != 3:
                _fail(f"desc join entry has arity {len(jop)}, expected 3",
                      where)
            _, inner, k = jop
            if not isinstance(inner, int) or not 0 <= inner < index:
                _fail(f"desc join entry targets op {inner!r}; the staircase "
                      f"must range over a strictly earlier (< {index}) "
                      "already-materialised table (interval-input "
                      "monotonicity)", where)
            if ops[inner][0] != "node":
                _fail(f"desc join entry targets op {inner}, which is not a "
                      "node op — chains must collapse to their terminal "
                      "node", where)
            expected_inner, hops = collapse(op[1])
            if not isinstance(k, int) or k < 1:
                _fail(f"desc join entry carries depth floor {k!r}; a "
                      "descendant hop is at least one level", where)
            if (inner, k) != (expected_inner, hops + 1):
                _fail(f"desc join entry records (inner={inner}, k={k}) but "
                      f"re-collapsing the chain gives "
                      f"(inner={expected_inner}, k={hops + 1})", where)
            continue
        if len(jop) != 2:
            _fail(f"node join entry has arity {len(jop)}, expected 2", where)
        specs = jop[1]
        child_indexes = op[4]
        if not isinstance(specs, tuple) or len(specs) != len(child_indexes):
            _fail(f"node join entry carries "
                  f"{len(specs) if isinstance(specs, tuple) else specs!r} "
                  f"child specs for {len(child_indexes)} children (width "
                  "uniformity across join arms)", where)
        for spec_index, (spec, child) in enumerate(zip(specs, child_indexes)):
            spot = f"{where} spec[{spec_index}]"
            if not isinstance(spec, tuple) or not spec:
                _fail(f"child spec {spec!r} is not a non-empty tuple", spot)
            if ops[child][0] == "desc":
                expected = ("desc",) + collapse(child)
                if spec != expected:
                    _fail(f"child spec {spec!r} disagrees with the "
                          f"re-collapsed chain {expected!r}", spot)
                if spec[2] < 1:
                    _fail(f"collapsed chain records {spec[2]} hops; a "
                          "descendant hop is at least one level", spot)
            elif spec != ("child", child):
                _fail(f"child spec {spec!r} does not mirror child op "
                      f"{child} as a child-span merge join", spot)


def _verify_pattern_plan(plan: Any, width: Optional[int] = None,
                         context: str = "pattern plan") -> None:
    """Verify one :class:`PatternPlan` against its own source pattern."""
    expected_width = plan.width if width is None else width
    if plan.width != expected_width:
        _fail(f"plan width {plan.width} != enclosing query width "
              f"{expected_width} (did _fix_widths run?)", context)
    if not isinstance(expected_width, int) or expected_width < 0:
        _fail(f"width {expected_width!r} is not a non-negative int",
              context)
    labels, attrs, n_nodes, n_descs = _pattern_alphabet(plan.pattern)
    node_ops, desc_ops = _verify_ops(plan.ops, expected_width, labels,
                                     attrs, context)
    if (node_ops, desc_ops) != (n_nodes, n_descs):
        _fail(f"op counts (node={node_ops}, desc={desc_ops}) disagree with "
              f"the pattern (node={n_nodes}, desc={n_descs})", context)
    _verify_join_ops(plan.ops, plan.join_ops, context)
    if not 0 <= plan.root < len(plan.ops):
        _fail(f"root op index {plan.root} outside ops", context)
    seen_slots: Set[int] = set()
    for name, slot in plan.slots.items():
        if not isinstance(slot, int) or not 0 <= slot < expected_width:
            _fail(f"slot {slot!r} of variable {name!r} outside width "
                  f"{expected_width}", context)
        if slot in seen_slots:
            _fail(f"slot {slot} bound by two names in one scope "
                  "(aliasing would corrupt joins)", context)
        seen_slots.add(slot)
    for name in plan.variables:
        if name not in plan.slots:
            _fail(f"pattern variable {name!r} has no slot", context)


# --------------------------------------------------------------------- #
# Query-level checks
# --------------------------------------------------------------------- #

def _verify_query_node(node: Any, query: Any, width: int,
                       free_slots: Set[int], context: str) -> None:
    """Parallel walk: the lowered operator tree must mirror the query AST."""
    from ..patterns import plan as planmod
    from ..patterns.queries import (ConjunctionQuery, ExistsQuery,
                                    PatternQuery, UnionQuery)
    if isinstance(query, PatternQuery):
        if not isinstance(node, planmod._Atom):
            _fail(f"pattern query lowered to {type(node).__name__}, "
                  "expected _Atom", context)
        if node.plan.pattern is not query.pattern:
            _fail("atom's pattern is not the query's pattern", context)
        _verify_pattern_plan(node.plan, width, context + ".atom")
        return
    if isinstance(query, ConjunctionQuery):
        if not isinstance(node, planmod._Join):
            _fail(f"conjunction lowered to {type(node).__name__}, "
                  "expected _Join", context)
        if len(node.members) != len(query.members):
            _fail(f"join has {len(node.members)} members, conjunction has "
                  f"{len(query.members)}", context)
        for index, (member_node, member_query) in enumerate(
                zip(node.members, query.members)):
            _verify_query_node(member_node, member_query, width, free_slots,
                               f"{context}.join[{index}]")
        return
    if isinstance(query, ExistsQuery):
        if not isinstance(node, planmod._Project):
            _fail(f"∃-query lowered to {type(node).__name__}, "
                  "expected _Project", context)
        cleared = node.cleared
        if not cleared and query.variables:
            _fail("∃ scope with bound variables clears no slots", context)
        for slot in cleared:
            if not isinstance(slot, int) or not 0 <= slot < width:
                _fail(f"projection clears slot {slot!r} outside width "
                      f"{width}", context)
            if slot in free_slots:
                _fail(f"projection clears slot {slot}, which the query "
                      "exports as a free variable (scope leak)", context)
        if len(cleared) != len(set(query.variables)):
            _fail(f"projection clears {len(cleared)} slots for "
                  f"{len(set(query.variables))} bound variables", context)
        _verify_query_node(node.inner, query.inner, width, free_slots,
                           context + ".project")
        return
    if isinstance(query, UnionQuery):
        if not isinstance(node, planmod._Union):
            _fail(f"union lowered to {type(node).__name__}, "
                  "expected _Union", context)
        if len(node.members) != len(query.members):
            _fail(f"union has {len(node.members)} arms, query has "
                  f"{len(query.members)}", context)
        for index, (member_node, member_query) in enumerate(
                zip(node.members, query.members)):
            _verify_query_node(member_node, member_query, width, free_slots,
                               f"{context}.union[{index}]")
        return
    _fail(f"unknown query node {type(query).__name__}", context)


def verify_plan(plan: Any) -> Any:
    """Statically verify a compiled plan; returns it (for chaining).

    Accepts a :class:`~repro.patterns.plan.PatternPlan` or
    :class:`~repro.patterns.plan.QueryPlan`; raises
    :class:`PlanVerificationError` on the first violated invariant.
    """
    from ..patterns import plan as planmod
    if isinstance(plan, planmod.PatternPlan):
        _verify_pattern_plan(plan)
        return plan
    if not isinstance(plan, planmod.QueryPlan):
        _fail(f"not a compiled plan: {type(plan).__name__}")
    width = plan.width
    if not isinstance(width, int) or width < 0:
        _fail(f"width {width!r} is not a non-negative int", "query plan")
    if len(plan.slot_names) != width:
        _fail(f"{len(plan.slot_names)} slot names for width {width}",
              "query plan")
    if len(plan.free_variables) != len(plan.free_slots):
        _fail(f"{len(plan.free_variables)} free variables but "
              f"{len(plan.free_slots)} free slots", "query plan")
    expected_free = tuple(plan.query.free_variables())
    if plan.free_variables != expected_free:
        _fail(f"free variables {plan.free_variables!r} disagree with the "
              f"query's {expected_free!r}", "query plan")
    free_slot_set: Set[int] = set()
    for name, slot in zip(plan.free_variables, plan.free_slots):
        if not isinstance(slot, int) or not 0 <= slot < width:
            _fail(f"free variable {name!r} bound to slot {slot!r} outside "
                  f"width {width}", "query plan")
        if slot in free_slot_set:
            _fail(f"two free variables share slot {slot}", "query plan")
        free_slot_set.add(slot)
        if plan.slot_names[slot] != name:
            _fail(f"free variable {name!r} maps to slot {slot}, but the "
                  f"slot table names it {plan.slot_names[slot]!r}",
                  "query plan")
    _verify_query_node(plan.node, plan.query, width, free_slot_set, "root")
    return plan


# --------------------------------------------------------------------- #
# CLI: verify the committed workloads' plans
# --------------------------------------------------------------------- #

def _workload_plans() -> Iterable[Tuple[str, Any]]:
    """Every committed STD source plan and canned query plan, labelled."""
    from ..engine import compile_setting
    from ..patterns.plan import compile_query
    from ..workloads import library, nested_relational

    settings = [("library", library.library_setting()),
                ("company", nested_relational.company_setting())]
    for name, setting in settings:
        compiled = compile_setting(setting)
        for index, plan in enumerate(compiled.std_source_plans):
            yield f"{name}: STD source plan #{index}", plan
    queries = [
        ("library: query_writer_of",
         library.query_writer_of("Computational Complexity")),
        ("library: query_works_in_year",
         library.query_works_in_year("1994")),
        ("company: query_projects_of",
         nested_relational.query_projects_of("Dept-0")),
    ]
    for name, query in queries:
        yield name, compile_query(query)


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.analysis.plancheck [--summary PATH]``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.plancheck",
        description="Statically verify the committed workloads' compiled "
                    "plans (STD source plans + canned queries).")
    parser.add_argument("--summary", default=None, metavar="PATH",
                        help="append a markdown summary (e.g. "
                             "$GITHUB_STEP_SUMMARY)")
    args = parser.parse_args(argv)

    checked: List[str] = []
    failures: List[Tuple[str, str]] = []
    for label, plan in _workload_plans():
        try:
            verify_plan(plan)
        except PlanVerificationError as error:
            failures.append((label, str(error)))
        else:
            checked.append(label)
    for label, message in failures:
        print(f"plancheck FAIL {label}: {message}")
    print(f"plancheck: {len(checked)} plan(s) verified, "
          f"{len(failures)} failure(s)")
    if args.summary:
        lines = ["## Plan verifier", "",
                 f"{len(checked)} plan(s) verified, "
                 f"{len(failures)} failure(s).", ""]
        for label, message in failures:
            lines.append(f"- **FAIL** {label}: {message}")
        with open(args.summary, "a", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    import sys
    sys.exit(main())
