"""RL006 — latency is measured on the monotonic clock.

Every latency and duration number the repo reports — ``EngineResult.
elapsed``, span durations, histogram observations — must come from
``time.perf_counter()`` (directly or through the ``repro.obs`` span/timer
API), never from ``time.time()`` deltas.  The wall clock steps under NTP
corrections and jumps across DST changes; one stepped sample silently
corrupts a latency histogram or a span tree, and the corruption is
unreproducible by construction.

This rule flags calls to ``time.time``/``time.time_ns`` and
``datetime.now``/``datetime.utcnow`` anywhere under ``repro.*`` *except*
``repro.generators`` and ``repro.workloads``, whose wall-clock discipline
is owned by RL005 (one finding per sin, not two).  Legitimate wall-clock
uses — timestamps in logs or artifacts, not durations — carry a
``# repro-lint: disable=RL006 -- reason`` suppression.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from ..core import Finding, ModuleContext, Rule

__all__ = ["WallClockTimingRule"]

#: RL005 owns wall-clock reads in these packages (seed-reproducibility);
#: flagging them here too would double-report every finding.
_RL005_SCOPES = ("repro.generators", "repro.workloads")
_WALL_CLOCK = {"time.time", "time.time_ns", "datetime.now",
               "datetime.utcnow", "datetime.datetime.now",
               "datetime.datetime.utcnow"}


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class WallClockTimingRule(Rule):
    id = "RL006"
    title = "latency is measured on the monotonic clock"
    rationale = ("time.time() steps under NTP/DST; durations built from it "
                 "corrupt histograms and span trees — use "
                 "time.perf_counter() or the repro.obs span/timer API.")

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        if not module.module.startswith("repro."):
            return
        if module.module.startswith(_RL005_SCOPES):
            return  # RL005 territory
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted in _WALL_CLOCK:
                yield module.finding(
                    self.id, node,
                    f"wall-clock read {dotted}(): durations must come from "
                    "time.perf_counter() (or the repro.obs span/timer API); "
                    "a genuine timestamp use takes a "
                    "`# repro-lint: disable=RL006 -- reason` suppression")
