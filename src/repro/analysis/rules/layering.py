"""RL003 — layering: the hot path never re-enters the parity oracles.

The functional API (``certain_answers``, ``canonical_solution``,
``check_consistency``, …) and the interpreted ``PatternMatcher`` are
behaviour-frozen *parity oracles* (see ROADMAP "Standing conventions"):
production code lives in ``repro.engine`` / ``repro.service`` /
``repro.patterns.plan`` and evaluates through compiled settings and plans.

Inside those layers this rule flags:

* any import of the interpreter oracle (:mod:`repro.patterns.evaluate`
  names — ``PatternMatcher``, ``match_anywhere``, … — or
  ``evaluate_query``/``boolean_query_holds``), and
* calls to functional-API entry points imported from ``repro.exchange``
  **unless** the call passes a ``compiled=`` handle — that keyword is the
  compiled fast path the engine layers are built on; a bare call silently
  recompiles the setting per request.

Modules that *are* oracle plumbing opt out with a reasoned
``# repro-lint: parity-oracle -- …`` marker; tests and benchmarks are out
of scope by module name.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Tuple

from ..core import Finding, ModuleContext, Rule

__all__ = ["LayeringRule"]

#: Layers under the rule.  ``repro.patterns.plan`` is listed exactly —
#: the rest of ``repro.patterns`` (the interpreter itself) is oracle-side.
_RESTRICTED_PREFIXES = ("repro.engine", "repro.service")
_RESTRICTED_EXACT = ("repro.patterns.plan",)

#: The interpreter oracle: importing any of these (or the module that
#: defines them) from a restricted layer is a violation.
_ORACLE_MODULE = "repro.patterns.evaluate"
_ORACLE_NAMES = {"PatternMatcher", "match_anywhere", "match_at_node",
                 "satisfying_assignments", "pattern_holds",
                 "evaluate_query", "boolean_query_holds"}

#: Functional-API entry points (per-request compute): calls must carry a
#: ``compiled=`` keyword inside restricted layers.
_FUNCTIONAL_NAMES = {"certain_answers", "certain_answer_boolean",
                     "naive_certain_answers", "check_consistency",
                     "check_consistency_general",
                     "check_consistency_nested_relational",
                     "canonical_solution", "canonical_pre_solution",
                     "chase", "enumerate_target_trees"}

_FUNCTIONAL_HOMES = ("repro.exchange", "repro")
_ORACLE_HOMES = ("repro.patterns", "repro")


def _restricted(module: str) -> bool:
    return (module.startswith(_RESTRICTED_PREFIXES)
            or module in _RESTRICTED_EXACT)


def _resolve_relative(module: str, node: ast.ImportFrom) -> str:
    """The absolute module an ``ImportFrom`` refers to."""
    if not node.level:
        return node.module or ""
    # ``module`` names a module, not a package: level 1 is its package.
    parts = module.split(".")[:-1]
    if node.level > 1:
        parts = parts[:len(parts) - (node.level - 1)]
    if node.module:
        parts = parts + node.module.split(".")
    return ".".join(parts)


def _from_home(resolved: str, homes: Tuple[str, ...]) -> bool:
    return any(resolved == home or resolved.startswith(home + ".")
               for home in homes)


class LayeringRule(Rule):
    id = "RL003"
    title = "engine/service/plan layers stay off the parity oracles"
    rationale = ("The interpreted matcher and the bare functional API are "
                 "behaviour-frozen oracles; the hot path goes through "
                 "compiled settings and plans.")

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        if not _restricted(module.module):
            return
        if module.directives.parity_oracle:
            return
        functional_bindings: Dict[str, str] = {}  # local name -> canonical
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if (alias.name == _ORACLE_MODULE
                            or alias.name.startswith(_ORACLE_MODULE + ".")):
                        yield module.finding(
                            self.id, node,
                            f"import of interpreter oracle {alias.name} in "
                            f"layer module {module.module}; evaluate "
                            "through compiled plans, or mark this module "
                            "`# repro-lint: parity-oracle -- why`")
                continue
            if not isinstance(node, ast.ImportFrom):
                continue
            resolved = _resolve_relative(module.module, node)
            if resolved == _ORACLE_MODULE:
                yield module.finding(
                    self.id, node,
                    f"import from {_ORACLE_MODULE} in layer module "
                    f"{module.module}; the interpreter is the parity "
                    "oracle — use repro.patterns.plan, or mark this "
                    "module `# repro-lint: parity-oracle -- why`")
                continue
            if _from_home(resolved, _ORACLE_HOMES):
                for alias in node.names:
                    if alias.name in _ORACLE_NAMES:
                        yield module.finding(
                            self.id, node,
                            f"import of interpreter-oracle name "
                            f"{alias.name} from {resolved} in layer module "
                            f"{module.module}")
            if _from_home(resolved, _FUNCTIONAL_HOMES):
                for alias in node.names:
                    if alias.name in _FUNCTIONAL_NAMES:
                        functional_bindings[alias.asname or alias.name] = \
                            alias.name

        if not functional_bindings:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Name):
                continue
            canonical = functional_bindings.get(func.id)
            if canonical is None:
                continue
            if any(keyword.arg == "compiled" for keyword in node.keywords):
                continue
            yield module.finding(
                self.id, node,
                f"bare functional-API call {canonical}(...) in layer "
                f"module {module.module}: pass compiled=<CompiledSetting> "
                "(the compiled fast path) or move the call behind the "
                "engine facade")
