"""RL001/RL002 — event-loop hygiene in the asyncio serving layer.

RL001
    No blocking calls inside ``async def`` bodies in ``repro.service``: a
    single ``time.sleep``, synchronous socket/subprocess call, console I/O
    or *unawaited* engine-compute call (``solve``, ``certain_answers``,
    ``check_consistency``, …) stalls the event loop that every other
    connection's replies are written from.  Blocking work belongs behind
    ``await service.offload(...)`` / ``run_in_executor``.

RL002
    Never ``await`` while holding a :class:`threading.Lock`/``RLock``
    acquired by an enclosing *synchronous* ``with``: the coroutine parks at
    the ``await`` with the lock held, and any executor thread that then
    takes the same lock deadlocks the process.  Applies to every
    ``async def`` in the tree (locks are detected by an inline
    ``threading.Lock()`` call or a ``*lock``/``*guard``/``*mutex`` name —
    ``asyncio.Lock`` used via ``async with`` is fine and not matched).
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator, List, Optional, Set

from ..core import Finding, ModuleContext, Rule

__all__ = ["NoBlockingInAsync", "NoAwaitUnderLock"]

#: Module-level callables that block the calling thread.
_BLOCKING_DOTTED = {
    "time.sleep",
    "os.system", "os.popen", "os.wait", "os.waitpid",
    "socket.create_connection", "socket.getaddrinfo",
    "socket.gethostbyname", "socket.gethostbyaddr",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
    "urllib.request.urlopen",
}

#: Builtins that perform console/file I/O on the calling thread.
_BLOCKING_BUILTINS = {"open", "input", "print"}

#: Engine-compute methods that are synchronous by contract: calling one
#: *unawaited* from a coroutine runs a whole chase/evaluation on the loop.
#: (The awaitable service methods share these names — an ``await`` in front
#: is exactly what distinguishes the safe call.)  ``execute`` /
#: ``execute_group`` are the Router and ShardHost forwarding entry points:
#: synchronous end-to-end (the ShardHost ones *block on a worker pipe*), so
#: a coroutine must reach them through ``service.offload``/``partial``,
#: never by direct call.
_ENGINE_SYNC = {"solve", "solve_batch", "certain_answers",
                "certain_answers_batch", "check_consistency", "classify",
                "prewarm", "execute", "execute_group"}

_LOCKISH_NAME = re.compile(r"(?:^|_)(?:r?lock|guard|mutex)$", re.IGNORECASE)
_LOCK_FACTORIES = {"threading.Lock", "threading.RLock"}


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _iter_async_defs(tree: ast.Module) -> Iterator[ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.AsyncFunctionDef):
            yield node


class _AsyncBodyWalker(ast.NodeVisitor):
    """Walks one async function body without descending into nested
    function definitions (each gets its own analysis context)."""

    def __init__(self) -> None:
        self.awaited_calls: Set[int] = set()
        self.calls: List[ast.Call] = []
        self.withs: List[ast.With] = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return  # separate (synchronous) context — not this coroutine's body

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        return  # nested coroutine: analyzed on its own

    def visit_Await(self, node: ast.Await) -> None:
        if isinstance(node.value, ast.Call):
            self.awaited_calls.add(id(node.value))
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        self.calls.append(node)
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        self.withs.append(node)
        self.generic_visit(node)

    @classmethod
    def walk_body(cls, func: ast.AsyncFunctionDef) -> "_AsyncBodyWalker":
        walker = cls()
        for statement in func.body:
            walker.visit(statement)
        return walker


class NoBlockingInAsync(Rule):
    id = "RL001"
    title = "no blocking calls in repro.service coroutines"
    rationale = ("A blocking call in an async def stalls the event loop "
                 "serving every connection; offload it instead.")

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        if not module.module.startswith("repro.service"):
            return
        for func in _iter_async_defs(module.tree):
            walker = _AsyncBodyWalker.walk_body(func)
            for call in walker.calls:
                dotted = _dotted(call.func)
                if isinstance(call.func, ast.Name):
                    if call.func.id in _BLOCKING_BUILTINS:
                        yield module.finding(
                            self.id, call,
                            f"blocking builtin {call.func.id}() inside "
                            f"async def {func.name}; move it off the event "
                            "loop (service.offload / run_in_executor)")
                    continue
                if dotted in _BLOCKING_DOTTED:
                    yield module.finding(
                        self.id, call,
                        f"blocking call {dotted}() inside async def "
                        f"{func.name}; it stalls the event loop — offload "
                        "it or use the asyncio equivalent")
                    continue
                if (isinstance(call.func, ast.Attribute)
                        and call.func.attr in _ENGINE_SYNC
                        and id(call) not in walker.awaited_calls):
                    yield module.finding(
                        self.id, call,
                        f"synchronous engine call .{call.func.attr}(...) "
                        f"inside async def {func.name} is not awaited: "
                        "either await the service method or offload the "
                        "engine call")


def _is_sync_lock(expr: ast.AST) -> Optional[str]:
    """A display name when ``expr`` looks like a threading lock."""
    if isinstance(expr, ast.Call):
        dotted = _dotted(expr.func)
        if dotted in _LOCK_FACTORIES:
            return dotted + "()"
        return None
    dotted = _dotted(expr)
    if dotted is None:
        return None
    terminal = dotted.rsplit(".", 1)[-1].lstrip("_")
    if _LOCKISH_NAME.search(terminal):
        return dotted
    return None


class NoAwaitUnderLock(Rule):
    id = "RL002"
    title = "no await while holding a threading lock"
    rationale = ("Awaiting with a sync lock held parks the coroutine "
                 "mid-critical-section; an executor thread taking the same "
                 "lock then deadlocks the process.")

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        for func in _iter_async_defs(module.tree):
            walker = _AsyncBodyWalker.walk_body(func)
            for with_node in walker.withs:
                lock_names = [name for name in
                              (_is_sync_lock(item.context_expr)
                               for item in with_node.items)
                              if name is not None]
                if not lock_names:
                    continue
                for await_node in self._awaits_in_body(with_node):
                    yield module.finding(
                        self.id, await_node,
                        f"await while holding {', '.join(lock_names)} "
                        f"(sync `with` in async def {func.name}): release "
                        "the lock before awaiting, or use asyncio.Lock "
                        "with `async with`")

    @staticmethod
    def _awaits_in_body(with_node: ast.With) -> Iterator[ast.Await]:
        class _Finder(ast.NodeVisitor):
            def __init__(self) -> None:
                self.found: List[ast.Await] = []

            def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
                return

            def visit_AsyncFunctionDef(self,
                                       node: ast.AsyncFunctionDef) -> None:
                return

            def visit_Await(self, node: ast.Await) -> None:
                self.found.append(node)
                self.generic_visit(node)

        finder = _Finder()
        for statement in with_node.body:
            finder.visit(statement)
        return iter(finder.found)
