"""The ReproLint rule catalogue.

Adding a rule: subclass :class:`repro.analysis.core.Rule` in a module
here, give it the next free ``RLxxx`` id, a one-line ``title`` and a
``rationale``, implement ``check(module)`` as an AST walk, append an
instance to :data:`ALL_RULES`, and add a fixture trio
(positive / negative / suppressed) to ``tests/test_analysis.py`` —
the catalogue table in ROADMAP.md is generated from these attributes.
"""

from __future__ import annotations

from typing import List

from ..core import Rule
from .blocking import NoAwaitUnderLock, NoBlockingInAsync
from .counters import CounterDisciplineRule
from .determinism import DeterminismRule
from .layering import LayeringRule
from .timing import WallClockTimingRule

__all__ = ["ALL_RULES"]

#: Every registered rule, in id order.
ALL_RULES: List[Rule] = [
    NoBlockingInAsync(),
    NoAwaitUnderLock(),
    LayeringRule(),
    CounterDisciplineRule(),
    DeterminismRule(),
    WallClockTimingRule(),
]
