"""RL005 — generator determinism.

Every generated scenario must reproduce exactly from
``generate_scenario(seed)`` (ROADMAP "Standing conventions"): a failing
property-sweep case is re-run from the seed in its assertion message.  One
naked ``random.random()`` or wall-clock read inside the generators and
that contract silently breaks — the sweep still passes, but failures stop
reproducing.

Inside ``repro.generators`` and ``repro.workloads`` this rule flags:

* module-level :mod:`random` calls (``random.random``, ``random.choice``,
  ``random.seed``, …) — all randomness must flow through an explicitly
  seeded ``random.Random(...)`` instance (constructing one is allowed);
* wall-clock reads: ``time.time``/``time.time_ns``/``datetime.now``/
  ``datetime.utcnow`` (timing a benchmark is what
  ``time.perf_counter`` is for, and it never feeds generated content).
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from ..core import Finding, ModuleContext, Rule

__all__ = ["DeterminismRule"]

_SCOPES = ("repro.generators", "repro.workloads")
_ALLOWED_RANDOM = {"Random", "SystemRandom"}
_WALL_CLOCK = {"time.time", "time.time_ns", "datetime.now",
               "datetime.utcnow", "datetime.datetime.now",
               "datetime.datetime.utcnow"}


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class DeterminismRule(Rule):
    id = "RL005"
    title = "generators stay seed-reproducible"
    rationale = ("Naked module-level randomness or wall-clock reads break "
                 "generate_scenario(seed) reproduction of sweep failures.")

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        if not module.module.startswith(_SCOPES):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted is None:
                continue
            if (dotted.startswith("random.")
                    and dotted.split(".", 1)[1] not in _ALLOWED_RANDOM):
                yield module.finding(
                    self.id, node,
                    f"naked {dotted}() in a generator module: draw from a "
                    "seeded random.Random(...) instance so "
                    "generate_scenario(seed) reproduces exactly")
            elif dotted in _WALL_CLOCK:
                yield module.finding(
                    self.id, node,
                    f"wall-clock read {dotted}() in a generator module "
                    "breaks seed-reproducibility; thread timestamps in as "
                    "explicit arguments")
