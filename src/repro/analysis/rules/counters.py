"""RL004 — cache-counter discipline.

Every ``EngineResult.cache`` snapshot must balance: hits + misses add up
per cache, evictions never exceed insertions, and ``registry.stats()``
aggregates stay monotonic across shard evictions.  That only holds if
counters move through :class:`repro.engine.stats.CacheStats` methods
(``hit``/``miss``/``evict``/``count``/``set_counts``) — one raw
``self.hits += 1`` in a new cache and the accounting invariants the tests
assert become unprovable.

The rule flags, anywhere in ``repro.*`` except ``repro.engine.stats``
itself:

* augmented assignment to an attribute named ``hits``/``misses``/
  ``evictions`` or ending in ``_hits``/``_misses``/``_evictions``/
  ``_rejections``/``_compiles``, and
* any assignment through the ``CacheStats`` internals
  (``_hits[...]``/``_misses[...]``/``_evictions[...]``/``_events[...]``).
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..core import Finding, ModuleContext, Rule

__all__ = ["CounterDisciplineRule"]

_COUNTER_ATTRS = {"hits", "misses", "evictions"}
_COUNTER_SUFFIXES = ("_hits", "_misses", "_evictions", "_rejections",
                     "_compiles")
_STORE_NAMES = {"_hits", "_misses", "_evictions", "_events"}
_EXEMPT_MODULE = "repro.engine.stats"


def _counterish(attr: str) -> bool:
    return attr in _COUNTER_ATTRS or attr.endswith(_COUNTER_SUFFIXES)


def _terminal_name(node: ast.AST) -> str:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


class CounterDisciplineRule(Rule):
    id = "RL004"
    title = "cache counters move only through CacheStats methods"
    rationale = ("Raw counter arithmetic breaks the balance invariants "
                 "every EngineResult.cache snapshot is tested against.")

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        if (not module.module.startswith("repro.")
                or module.module == _EXEMPT_MODULE):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.AugAssign):
                target = node.target
                if (isinstance(target, ast.Attribute)
                        and _counterish(target.attr)):
                    yield module.finding(
                        self.id, node,
                        f"raw counter arithmetic on .{target.attr}: route "
                        "it through CacheStats "
                        "(.hit/.miss/.evict/.count) so cache snapshots "
                        "stay balanced")
                    continue
            if isinstance(node, (ast.AugAssign, ast.Assign)):
                targets = ([node.target] if isinstance(node, ast.AugAssign)
                           else node.targets)
                for target in targets:
                    if (isinstance(target, ast.Subscript)
                            and _terminal_name(target.value)
                            in _STORE_NAMES):
                        yield module.finding(
                            self.id, node,
                            f"direct mutation of CacheStats internals "
                            f"({_terminal_name(target.value)}[...]): use "
                            "the CacheStats recording methods instead")
