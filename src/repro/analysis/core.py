"""ReproLint core: module loading, rule running, finding reporting.

The analyzer is a plain :mod:`ast` walk — no imports of the analyzed code,
no third-party dependencies — so it can run as the first CI step, before
anything is installed beyond the package itself.

A :class:`Rule` sees one :class:`ModuleContext` (path, dotted module name,
parsed AST, directives) and yields :class:`Finding`\\ s.  :func:`run` walks
the requested paths, applies every registered rule, honours reasoned
``# repro-lint: disable=`` suppressions (see :mod:`.directives`) and — in
strict mode — reports suppressions that no longer suppress anything.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .directives import (BAD_DIRECTIVE_RULE, DirectiveSet, parse_directives,
                         validate_codes)

__all__ = ["Finding", "ModuleContext", "Rule", "analyze_source",
           "analyze_file", "collect_files", "run", "format_findings",
           "summary_markdown"]

#: Top-level areas whose files get a dotted name rooted at the area, so
#: rules can scope on ``repro.…`` vs ``tests.…`` vs ``benchmarks.…``.
_AREA_ROOTS = ("tests", "benchmarks", "examples")


@dataclass(frozen=True, order=True)
class Finding:
    """One reported invariant violation (``path:line:col RLxxx message``)."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col} {self.rule} {self.message}"


class ModuleContext:
    """Everything a rule may look at for one analyzed file."""

    __slots__ = ("path", "module", "tree", "source", "directives")

    def __init__(self, path: str, module: str, tree: ast.Module,
                 source: str, directives: DirectiveSet) -> None:
        self.path = path
        self.module = module
        self.tree = tree
        self.source = source
        self.directives = directives

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        return Finding(self.path, getattr(node, "lineno", 0),
                       getattr(node, "col_offset", 0), rule, message)


class Rule:
    """Base class: subclasses set ``id``/``title``/``rationale`` and
    implement :meth:`check`."""

    id: str = "RL???"
    title: str = ""
    rationale: str = ""

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Rule {self.id}: {self.title}>"


# --------------------------------------------------------------------- #
# Module naming
# --------------------------------------------------------------------- #

def module_name_for(path: Path) -> str:
    """A dotted module name for ``path``.

    Files under a ``src`` directory are named from the package root
    (``src/repro/service/server.py`` → ``repro.service.server``); files
    under ``tests``/``benchmarks``/``examples`` are rooted at that area;
    anything else falls back to its stem.  ``__init__`` maps to the
    package itself.
    """
    parts = list(path.parts)
    dotted: Optional[List[str]] = None
    for anchor in ("src",) + _AREA_ROOTS:
        if anchor in parts:
            index = parts.index(anchor)
            tail = parts[index + (1 if anchor == "src" else 0):]
            if tail and tail[-1].endswith(".py"):
                dotted = tail
                break
    if dotted is None:
        dotted = [parts[-1]] if parts else []
    if not dotted:
        return ""
    dotted = list(dotted)
    dotted[-1] = dotted[-1][:-3] if dotted[-1].endswith(".py") else dotted[-1]
    if dotted[-1] == "__init__":
        dotted = dotted[:-1]
    return ".".join(dotted)


# --------------------------------------------------------------------- #
# Analysis driver
# --------------------------------------------------------------------- #

def analyze_source(source: str, rules: Sequence[Rule], *,
                   path: str = "<string>", module: str = "",
                   strict: bool = False) -> List[Finding]:
    """Analyze one in-memory module (the fixture entry point for tests)."""
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        return [Finding(path, error.lineno or 0, error.offset or 0,
                        BAD_DIRECTIVE_RULE,
                        f"file does not parse: {error.msg}")]
    directives = parse_directives(source)
    context = ModuleContext(path, module, tree, source, directives)
    findings: List[Finding] = []
    known = {rule.id: rule for rule in rules}
    for rule in rules:
        for finding in rule.check(context):
            if directives.suppresses(finding.rule, finding.line):
                continue
            findings.append(finding)
    for line, col, message in directives.problems:
        findings.append(Finding(path, line, col, BAD_DIRECTIVE_RULE, message))
    for line, col, message in validate_codes(directives, known):
        findings.append(Finding(path, line, col, BAD_DIRECTIVE_RULE, message))
    if strict:
        for directive in directives.unused():
            findings.append(Finding(
                path, directive.line, 0, BAD_DIRECTIVE_RULE,
                f"unused suppression of {', '.join(directive.codes)} "
                f"({directive.reason!r}): nothing on line "
                f"{directive.covers} triggers it any more — delete it"))
    return sorted(findings)


def analyze_file(path: Path, rules: Sequence[Rule], *,
                 strict: bool = False,
                 display_root: Optional[Path] = None) -> List[Finding]:
    """Analyze one file on disk."""
    source = path.read_text(encoding="utf-8")
    display = path
    if display_root is not None:
        try:
            display = path.relative_to(display_root)
        except ValueError:
            display = path
    return analyze_source(source, rules, path=str(display),
                          module=module_name_for(path), strict=strict)


def collect_files(paths: Sequence[Path]) -> List[Path]:
    """Every ``.py`` file under ``paths`` (files pass through verbatim)."""
    files: List[Path] = []
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                files.append(path)
        elif path.is_dir():
            files.extend(candidate for candidate in
                         sorted(path.rglob("*.py"))
                         if "__pycache__" not in candidate.parts
                         and not any(part.startswith(".")
                                     for part in candidate.parts))
    return files


def run(paths: Sequence[Path], rules: Sequence[Rule], *,
        strict: bool = False,
        display_root: Optional[Path] = None) -> List[Finding]:
    """Analyze every Python file under ``paths`` with ``rules``."""
    findings: List[Finding] = []
    for file_path in collect_files(paths):
        findings.extend(analyze_file(file_path, rules, strict=strict,
                                     display_root=display_root))
    return sorted(findings)


# --------------------------------------------------------------------- #
# Reporting
# --------------------------------------------------------------------- #

def format_findings(findings: Sequence[Finding]) -> str:
    return "\n".join(finding.format() for finding in findings)


def summary_markdown(findings: Sequence[Finding], rules: Sequence[Rule],
                     checked_files: int) -> str:
    """A GitHub job-summary block: rule counts, then the findings."""
    by_rule: Dict[str, int] = {}
    for finding in findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    lines = ["## ReproLint", "",
             f"Checked {checked_files} files — "
             f"{len(findings)} finding(s).", ""]
    lines.append("| rule | title | findings |")
    lines.append("| --- | --- | ---: |")
    lines.append(f"| {BAD_DIRECTIVE_RULE} | directive hygiene | "
                 f"{by_rule.get(BAD_DIRECTIVE_RULE, 0)} |")
    for rule in rules:
        lines.append(f"| {rule.id} | {rule.title} | "
                     f"{by_rule.get(rule.id, 0)} |")
    if findings:
        lines.append("")
        lines.append("```text")
        lines.extend(finding.format() for finding in findings)
        lines.append("```")
    lines.append("")
    return "\n".join(lines)
