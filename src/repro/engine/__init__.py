"""The engine API: compile a setting once, serve per-tree requests forever.

* :func:`compile_setting` turns a
  :class:`~repro.exchange.setting.DataExchangeSetting` into a
  :class:`CompiledSetting` owning every setting-derived artefact (content
  model NFAs and univocality analyses, structural verdicts, dichotomy
  routing, consistency machinery) with cache-hit/miss accounting;
* :class:`ExchangeEngine` wraps a compiled setting and exposes the whole
  pipeline — consistency, chase, certain answers, batched certain answers —
  as methods returning a uniform :class:`EngineResult`.

The functional API in :mod:`repro.exchange` remains supported; the engine
delegates to it while handing over the compiled fast path.
"""

from .compiled import CompiledSetting, compile_setting
from .engine import BATCH_EXECUTORS, EngineResult, ExchangeEngine
from .stats import CacheStats, EngineStats

__all__ = ["BATCH_EXECUTORS", "CacheStats", "CompiledSetting",
           "compile_setting", "EngineResult", "EngineStats",
           "ExchangeEngine"]
