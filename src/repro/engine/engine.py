"""The batch-first facade over the whole exchange pipeline.

:class:`ExchangeEngine` owns a :class:`~repro.engine.compiled.CompiledSetting`
and exposes every pipeline stage as a method returning a uniform
:class:`EngineResult` — success flag, payload, strategy used, wall-clock
timing and a cache-stats snapshot — instead of the four unrelated result
dataclasses of the functional API (which remains available and is what the
engine delegates to, handing it the compiled fast path).

Per-tree work (``solve``, ``certain_answers``) is embarrassingly parallel
across trees once the setting is compiled; the ``*_batch`` methods fan it
out over a ``concurrent.futures`` pool.  ``executor="thread"`` shares the
compiled setting in-process (cheap, but chase/query work is GIL-bound);
``executor="process"`` pickles the compiled setting once per worker — it
arrives warm, so workers never recompile — and escapes the GIL for
CPU-bound batches.

On top of the compiled-setting caches the engine keeps a **result cache**
keyed by ``(tree_fingerprint, query_fingerprint, variable_order)``: repeated
``certain_answers`` requests for the same tree and query are served without
re-chasing.  Hits and misses are surfaced through the ``cache`` snapshot of
every :class:`EngineResult` (``result_cache_hits`` / ``result_cache_misses``)
and through :meth:`ExchangeEngine.stats_summary`.  Only *results* are cached
— including "no solution" outcomes — never exceptions: a call that raises
(:class:`~repro.exchange.errors.ChaseError`, a precondition ``ValueError``)
is recomputed, and re-raises, every time.

The cache is unbounded by default — right for a batch job whose working set
is its own input, wrong for a long-lived server.  ``result_cache_maxsize=N``
bounds it to the ``N`` most recently used entries (least-recently-used
eviction, counted as ``result_cache_evictions``); the serving layer
(:mod:`repro.service`) sets this per shard, so each setting's tenants share a
budget but can never evict another setting's entries.

**Fingerprint-addressed requests.**  After :meth:`attach_store` the
per-tree methods accept a document *fingerprint* (``str``) wherever they
accept an inline :class:`XMLTree`: the engine resolves it through a small
LRU of thawed trees and then the attached
:class:`~repro.storage.CorpusStore`, raising the typed
:class:`~repro.storage.UnknownDocumentError` for absent fingerprints.
Resolutions are counted on the store's ``CacheStats`` (``store_hits`` /
``store_misses``; ``store_bytes`` moves only when record bytes are
actually read off the heap) and surface in every result's ``cache``
snapshot and in :meth:`stats_summary`.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Any, Callable, Dict, List, Optional,
                    Sequence, Tuple, Union)

from ..exchange.certain_answers import CertainAnswers, certain_answers
from ..exchange.chase import ChaseResult, canonical_solution
from ..exchange.consistency import ConsistencyResult, check_consistency
from ..exchange.dichotomy import DichotomyReport
from ..exchange.errors import NoSolutionError
from ..exchange.setting import DataExchangeSetting
from ..obs.trace import span as obs_span, timer as obs_timer
from ..patterns.queries import Query
from ..xmlmodel.tree import XMLTree
from ..xmlmodel.values import NullFactory
from .compiled import CompiledSetting, compile_setting
from .stats import CacheStats, EngineStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..storage import CorpusStore

__all__ = ["EngineResult", "EngineStats", "ExchangeEngine"]

#: A per-tree operand: the document itself, or — with a store attached —
#: its fingerprint.
TreeRef = Union[XMLTree, str]

#: Strategy names accepted by :meth:`ExchangeEngine.check_consistency`.
CONSISTENCY_STRATEGIES = ("auto", "nested_relational", "general")

#: Executor names accepted by the ``*_batch`` methods.
BATCH_EXECUTORS = ("serial", "thread", "process")


@dataclass
class EngineResult:
    """Uniform outcome of every engine operation.

    ``ok``
        Did the operation produce a defined payload?  ``False`` means "no
        solution exists" for ``solve`` / ``certain_answers`` and
        "inconsistent" for ``check_consistency`` — never an internal error
        (those raise).
    ``payload``
        The operation's primary value: a ``bool`` for consistency, the
        canonical-solution tree for ``solve``, the set of certain-answer
        tuples for ``certain_answers``, the dichotomy report for
        ``classify``.
    ``strategy``
        Which algorithm served the request (e.g. ``"nested-relational"``,
        ``"general"``, ``"chase"``).
    ``elapsed``
        Wall-clock seconds spent inside the engine for this request.
    ``cache``
        :meth:`CompiledSetting.cache_stats` snapshot taken after the request
        (cumulative counters; diff two snapshots to see per-request reuse).
    ``raw``
        The underlying functional-API result object
        (:class:`ConsistencyResult`, :class:`ChaseResult`,
        :class:`CertainAnswers`, :class:`DichotomyReport`) for callers that
        need the full detail.
    """

    ok: bool
    payload: Any
    strategy: str
    elapsed: float
    cache: Dict[str, int] = field(default_factory=dict)
    detail: str = ""
    raw: Any = None

    def __bool__(self) -> bool:
        return self.ok

    def unwrap(self) -> Any:
        """The payload, or :class:`NoSolutionError` when ``ok`` is false."""
        if not self.ok:
            raise NoSolutionError(self.detail or "operation produced no result")
        return self.payload


class ExchangeEngine:
    """A compiled, cached facade over consistency, the chase and certain
    answers.

    Build it from a setting (compiled on the spot) or from an explicitly
    precompiled :class:`CompiledSetting`; reuse it for any number of
    per-tree requests::

        engine = ExchangeEngine(setting)
        engine.check_consistency().payload        # True / False
        engine.solve(tree).payload                # canonical solution tree
        engine.certain_answers(tree, query).payload
        engine.certain_answers_batch(trees, query, parallel=4)
    """

    def __init__(self, compiled: Union[CompiledSetting, DataExchangeSetting],
                 result_cache: bool = True,
                 result_cache_maxsize: Optional[int] = None) -> None:
        if isinstance(compiled, DataExchangeSetting):
            compiled = compile_setting(compiled)
        if not isinstance(compiled, CompiledSetting):
            raise TypeError(
                f"expected a DataExchangeSetting or CompiledSetting, "
                f"got {type(compiled).__name__}")
        if result_cache_maxsize is not None and result_cache_maxsize < 1:
            raise ValueError(
                f"result_cache_maxsize must be a positive integer or None "
                f"(unbounded), got {result_cache_maxsize!r}")
        self.compiled = compiled
        self.requests = 0
        #: ``result_cache=False`` disables the engine-level result cache
        #: (every request recomputes; counters stay at zero).
        self.result_cache_enabled = result_cache
        #: ``None`` keeps the cache unbounded (the batch-job default, where
        #: the working set is the job's own input); a long-lived server
        #: should bound it — least-recently-used entries are then evicted
        #: and counted as ``result_cache_evictions``.
        self.result_cache_maxsize = result_cache_maxsize
        self._results: "OrderedDict[Tuple[str, str, Optional[Tuple[str, ...]]], CertainAnswers]" = OrderedDict()
        self._engine_stats = CacheStats()
        #: Attached corpus store (see :meth:`attach_store`) and the LRU of
        #: thawed trees fronting it, keyed by fingerprint.
        self._store: Optional["CorpusStore"] = None
        self._store_trees: "OrderedDict[str, XMLTree]" = OrderedDict()
        self._store_tree_maxsize = 64
        # Guards the result cache, its counters and the request counter
        # against thread-pool batches; computation happens outside the lock
        # (two threads racing past the lookup may both compute — the
        # counters then truthfully report two misses).
        self._lock = threading.Lock()

    @property
    def setting(self) -> DataExchangeSetting:
        return self.compiled.setting

    @property
    def store(self) -> Optional["CorpusStore"]:
        """The attached corpus store, or ``None``."""
        return self._store

    def attach_store(self, store: Union["CorpusStore", str, "os.PathLike"],
                     *, read_only: bool = False,
                     tree_cache_maxsize: int = 64) -> "CorpusStore":
        """Attach a persistent corpus store (a :class:`CorpusStore` or a
        store directory path, opened — and created, unless ``read_only`` —
        on the spot).

        Afterwards every per-tree method accepts a document fingerprint in
        place of an inline tree; resolved trees are kept in a
        ``tree_cache_maxsize``-bounded LRU so repeated requests against
        the same document thaw it once.  Returns the attached store (handy
        for ``engine.attach_store(path).put_tree(tree)``)."""
        from ..storage import CorpusStore
        if tree_cache_maxsize < 1:
            raise ValueError(f"tree_cache_maxsize must be >= 1, "
                             f"got {tree_cache_maxsize!r}")
        if not isinstance(store, CorpusStore):
            store = CorpusStore(store, read_only=read_only)
        with self._lock:
            self._store = store
            self._store_tree_maxsize = tree_cache_maxsize
            self._store_trees.clear()
        return store

    def resolve_tree(self, source: TreeRef) -> XMLTree:
        """An inline tree verbatim, or a fingerprint resolved through the
        thawed-tree LRU and the attached store.

        Raises :class:`~repro.storage.StoreError` when a fingerprint is
        used with no store attached and
        :class:`~repro.storage.UnknownDocumentError` when the store has no
        such document (both typed, both wire-codable)."""
        if isinstance(source, XMLTree):
            return source
        store = self._store
        if store is None:
            from ..storage import StoreError
            raise StoreError(
                f"cannot resolve tree fingerprint {source[:12]}...: no "
                f"store attached (call attach_store first)")
        with self._lock:
            cached = self._store_trees.get(source)
            if cached is not None:
                self._store_trees.move_to_end(source)
        if cached is not None:
            store.stats.hit("store")
            return cached
        tree = store.load_tree(source)
        with self._lock:
            self._store_trees[source] = tree
            self._store_trees.move_to_end(source)
            while len(self._store_trees) > self._store_tree_maxsize:
                self._store_trees.popitem(last=False)
        return tree

    @property
    def stats(self) -> Dict[str, int]:
        """Cumulative cache statistics: the compiled setting's caches merged
        with the engine-level result cache counters (and, with a store
        attached, the store's resolution counters)."""
        merged = self.compiled.cache_stats()
        merged.update(self._engine_stats.snapshot())
        if self._store is not None:
            # Read the three store counters directly rather than through
            # snapshot(): this runs per EngineResult on every shard engine
            # sharing one store handle, and the full sorted/formatted
            # snapshot is measurably slower on the warm request path.
            # Store-less engines skip the keys entirely (readers treat the
            # absence as zero) — the warm cached path stays as cheap as it
            # was before the storage layer existed.
            stats = self._store.stats
            merged["store_hits"] = stats.hits("store")
            merged["store_misses"] = stats.misses("store")
            merged["store_bytes"] = stats.counts("store_bytes")
        merged.setdefault("result_cache_hits", 0)
        merged.setdefault("result_cache_misses", 0)
        merged.setdefault("result_cache_evictions", 0)
        merged.setdefault("plan_cache_hits", 0)
        merged.setdefault("plan_cache_misses", 0)
        merged.setdefault("plan_cache_evictions", 0)
        merged.setdefault("plan_join_runs", 0)
        merged.setdefault("plan_recurrence_runs", 0)
        return merged

    def stats_summary(self) -> EngineStats:
        """The engine's counters as a structured :class:`EngineStats`."""
        counters = self.stats
        return EngineStats(
            requests=self.requests,
            result_cache_hits=counters["result_cache_hits"],
            result_cache_misses=counters["result_cache_misses"],
            result_cache_entries=len(self._results),
            result_cache_evictions=counters["result_cache_evictions"],
            result_cache_maxsize=self.result_cache_maxsize,
            plan_cache_hits=counters["plan_cache_hits"],
            plan_cache_misses=counters["plan_cache_misses"],
            plan_cache_evictions=counters["plan_cache_evictions"],
            plan_cache_entries=len(self.compiled.plan_cache),
            plan_join_runs=counters["plan_join_runs"],
            plan_recurrence_runs=counters["plan_recurrence_runs"],
            store_hits=counters.get("store_hits", 0),
            store_misses=counters.get("store_misses", 0),
            store_bytes=counters.get("store_bytes", 0),
            counters=counters)

    def clear_result_cache(self) -> None:
        """Drop every cached result (counters are kept)."""
        with self._lock:
            self._results.clear()

    # ------------------------------------------------------------------ #
    # Setting-level operations
    # ------------------------------------------------------------------ #

    def classify(self) -> EngineResult:
        """The dichotomy routing decision (Theorem 6.2): is this setting in
        the tractable class?  ``ok`` is always true; ``payload.tractable``
        carries the verdict."""
        with obs_timer("engine.classify") as clock:
            report: DichotomyReport = self.compiled.dichotomy
            return self._result(True, report, "dichotomy", clock,
                                detail=report.summary(), raw=report)

    def check_consistency(self, strategy: str = "auto",
                          **kwargs: Any) -> EngineResult:
        """Decide consistency (Section 4) with automatic strategy routing.

        ``strategy`` is ``"auto"`` (nested-relational fast path when both
        DTDs qualify), ``"nested_relational"`` (Theorem 4.5) or
        ``"general"`` (Theorem 4.1); extra keyword arguments reach the
        general procedure (e.g. ``max_source_trees``)."""
        normalised = strategy.replace("-", "_")
        if normalised not in CONSISTENCY_STRATEGIES:
            raise ValueError(
                f"unknown consistency strategy {strategy!r}; "
                f"expected one of {', '.join(CONSISTENCY_STRATEGIES)}")
        with obs_timer("engine.consistency") as clock:
            outcome: ConsistencyResult = check_consistency(
                self.setting, method=normalised.replace("_", "-"),
                compiled=self.compiled, **kwargs)
            return self._result(outcome.consistent, outcome.consistent,
                                outcome.method, clock,
                                detail=outcome.detail, raw=outcome)

    # ------------------------------------------------------------------ #
    # Per-tree operations
    # ------------------------------------------------------------------ #

    def solve(self, source_tree: TreeRef,
              nulls: Optional[NullFactory] = None) -> EngineResult:
        """Chase ``cps(T)`` into the canonical solution ``T*`` (Section 6.1).

        ``source_tree`` is an inline tree or — with a store attached — a
        document fingerprint.  ``ok`` is false — with the chase's failure
        reason in ``detail`` — when the source tree has no solution
        (Lemma 6.15 b)."""
        with obs_timer("engine.solve") as clock:
            source_tree = self.resolve_tree(source_tree)
            outcome: ChaseResult = canonical_solution(
                self.setting, source_tree, nulls, compiled=self.compiled)
            return self._result(outcome.success, outcome.tree, "chase",
                                clock, detail=outcome.failure or "",
                                raw=outcome)

    def certain_answers(self, source_tree: TreeRef, query: Query,
                        variable_order: Optional[Sequence[str]] = None,
                        nulls: Optional[NullFactory] = None) -> EngineResult:
        """``certain(Q, T)`` via the canonical solution (Theorem 6.2).

        ``source_tree`` is an inline tree or — with a store attached — a
        document fingerprint.  ``payload`` is the set of all-constant
        answer tuples; ``ok`` is false when the source tree has no
        solution.  Repeated requests for a fingerprint-identical ``(tree,
        query, variable_order)`` triple are served from the result cache
        (observable only through the ``result_cache_*`` counters —
        payload, strategy and detail are identical to a fresh
        computation), so inline and fingerprint-addressed forms of the
        same document share cache entries.  Passing an explicit ``nulls``
        factory bypasses the cache: the caller is asking for the canonical
        solution to be built from *that* factory, which a cached outcome
        would silently ignore."""
        with obs_timer("engine.certain_answers") as clock:
            source_tree = self.resolve_tree(source_tree)
            key = (None if nulls is not None
                   else self._result_key(source_tree, query, variable_order))
            if key is not None:
                with obs_span("engine.cache_lookup"):
                    cached = self._cache_lookup(key)
                if cached is not None:
                    return self._certain_result(cached, clock)
            outcome: CertainAnswers = certain_answers(
                self.setting, source_tree, query, variable_order, nulls,
                compiled=self.compiled)
            if key is not None:
                self._cache_store(key, outcome)
            return self._certain_result(outcome, clock)

    def _result_key(self, source_tree: XMLTree, query: Query,
                    variable_order: Optional[Sequence[str]]
                    ) -> Optional[Tuple[str, str, Optional[Tuple[str, ...]]]]:
        if not self.result_cache_enabled:
            return None
        order = tuple(variable_order) if variable_order is not None else None
        return (source_tree.fingerprint(), query.fingerprint(), order)

    def _cache_lookup(self, key: Tuple) -> Optional[CertainAnswers]:
        """Counted result-cache lookup; a hit refreshes the entry's LRU
        position."""
        with self._lock:
            cached = self._results.get(key)
            if cached is None:
                self._engine_stats.miss("result_cache")
            else:
                self._results.move_to_end(key)
                self._engine_stats.hit("result_cache")
            return cached

    def _cache_store(self, key: Tuple, outcome: CertainAnswers) -> None:
        """Store ``outcome`` under ``key``, evicting least-recently-used
        entries beyond ``result_cache_maxsize`` (counted)."""
        with self._lock:
            self._results[key] = outcome
            self._results.move_to_end(key)
            if self.result_cache_maxsize is not None:
                while len(self._results) > self.result_cache_maxsize:
                    self._results.popitem(last=False)
                    self._engine_stats.evict("result_cache")

    def _certain_result(self, outcome: CertainAnswers,
                        clock: Any) -> EngineResult:
        detail = "" if outcome.has_solution else "the source tree has no solution"
        return self._result(outcome.has_solution, outcome.answers,
                            "canonical-solution", clock,
                            detail=detail, raw=outcome)

    def certain_answer_boolean(self, source_tree: TreeRef,
                               query: Query) -> EngineResult:
        """Boolean certain answers; ``payload`` is ``True`` / ``False`` and
        ``ok`` is false (payload ``None``) when no solution exists."""
        result = self.certain_answers(source_tree, query)
        payload = bool(result.payload) if result.ok else None
        return EngineResult(result.ok, payload, result.strategy,
                            result.elapsed, result.cache, result.detail,
                            result.raw)

    # ------------------------------------------------------------------ #
    # Batch operations
    # ------------------------------------------------------------------ #

    def solve_batch(self, source_trees: Sequence[TreeRef],
                    parallel: Optional[int] = None,
                    executor: str = "thread") -> List[EngineResult]:
        """Canonical solutions for many source trees (order-preserving).

        Items may be inline trees or stored-document fingerprints.
        ``executor`` is ``"thread"`` (default), ``"process"`` or
        ``"serial"``; see :meth:`certain_answers_batch`."""
        trees = [self.resolve_tree(tree) for tree in source_trees]
        return self._map_batch("solve", self.solve, trees,
                               parallel, executor)

    def certain_answers_batch(self, source_trees: Sequence[TreeRef],
                              queries: Union[Query, Sequence[Query]],
                              parallel: Optional[int] = None,
                              executor: str = "thread") -> List[EngineResult]:
        """``certain(Q_i, T_i)`` for many trees (order-preserving).

        ``queries`` is either a single query evaluated against every tree or
        a sequence paired elementwise with ``source_trees``.  ``parallel=N``
        fans the per-tree work out over ``N`` workers:

        * ``executor="thread"`` — a thread pool sharing the compiled setting
          read-only (each request gets its own null factory); cheap to start
          but GIL-bound for CPU-heavy chases;
        * ``executor="process"`` — a process pool; the compiled setting is
          pickled once per worker (arriving warm, so workers never
          recompile) and per-tree work runs on separate cores.  Errors
          raised by a worker propagate to the caller exactly as in the
          serial path;
        * ``executor="serial"`` — force in-line execution regardless of
          ``parallel``.

        All three executors consult (and fill) the engine's result cache in
        the parent, and payloads are identical across executors.  The serial
        and process paths never dispatch a fingerprint-identical request
        twice (the process path collapses in-batch duplicates onto one
        task); the thread path consults the cache per request, so
        *concurrent* duplicates racing past the lookup may occasionally
        compute in parallel — counters then truthfully report extra misses.
        """
        trees = [self.resolve_tree(tree) for tree in source_trees]
        if isinstance(queries, Query):
            pairs = [(tree, queries) for tree in trees]
        else:
            query_list = list(queries)
            if len(query_list) != len(trees):
                raise ValueError(
                    f"{len(trees)} source tree(s) but {len(query_list)} "
                    "query/queries; pass one query or exactly one per tree")
            pairs = list(zip(trees, query_list))
        return self._map_batch("certain_answers",
                               lambda pair: self.certain_answers(*pair),
                               pairs, parallel, executor)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _map_batch(self, operation_name: str,
                   operation: Callable[[Any], EngineResult],
                   items: List[Any], parallel: Optional[int], executor: str
                   ) -> List[EngineResult]:
        if executor not in BATCH_EXECUTORS:
            raise ValueError(f"unknown batch executor {executor!r}; "
                             f"expected one of {', '.join(BATCH_EXECUTORS)}")
        workers = min(parallel or 1, len(items))
        if executor == "process" and workers > 1:
            return self._map_process(operation_name, items, workers)
        if executor == "thread" and workers > 1:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(operation, items))
        return [operation(item) for item in items]

    def _map_process(self, operation_name: str, items: List[Any],
                     workers: int) -> List[EngineResult]:
        """Fan per-tree work out over a process pool.

        The result cache is consulted in the parent first, and duplicates
        *within* the batch are collapsed onto one task, so no fingerprint-
        identical request is ever dispatched twice — cached and deduplicated
        occurrences count as hits, exactly like the serial path.  Worker
        outcomes are stored back into the cache, and every returned result
        carries the parent's merged cache snapshot (the same view the other
        executors report).
        """
        results: List[Optional[EngineResult]] = [None] * len(items)
        tasks: List[Tuple[str, Any]] = []
        #: result index -> position in ``tasks`` serving it.
        served_by: List[Tuple[int, int]] = []
        task_keys: List[Optional[Tuple]] = []
        task_of_key: Dict[Tuple, int] = {}
        for index, item in enumerate(items):
            key = None
            if operation_name == "certain_answers":
                tree, query = item
                key = self._result_key(tree, query, None)
                if key is not None:
                    with self._lock:
                        cached = self._results.get(key)
                        if cached is not None:
                            self._results.move_to_end(key)
                            self._engine_stats.hit("result_cache")
                        elif key in task_of_key:
                            self._engine_stats.hit("result_cache")
                        else:
                            self._engine_stats.miss("result_cache")
                    if cached is not None:
                        with obs_timer("engine.certain_answers") as clock:
                            results[index] = self._certain_result(cached,
                                                                  clock)
                        continue
                    pending = task_of_key.get(key)
                    if pending is not None:
                        # A fingerprint-identical request is already in this
                        # batch: share its task (and future cache entry).
                        served_by.append((index, pending))
                        continue
                    task_of_key[key] = len(tasks)
            task_keys.append(key)
            served_by.append((index, len(tasks)))
            tasks.append((operation_name, item))
        if tasks:
            with ProcessPoolExecutor(
                    max_workers=min(workers, len(tasks)),
                    initializer=_process_worker_init,
                    initargs=(self.compiled,)) as pool:
                worker_results = list(pool.map(_process_worker_run, tasks))
            for position, result in enumerate(worker_results):
                key = task_keys[position]
                if key is not None:
                    self._cache_store(key, result.raw)
            for index, position in served_by:
                result = worker_results[position]
                with self._lock:
                    self.requests += 1
                results[index] = result
            # One snapshot after the whole batch: the merged parent view
            # every other executor's results carry (worker-local snapshots
            # lack the engine-level counters).
            snapshot = self.stats
            for result in worker_results:
                result.cache = snapshot
        assert all(result is not None for result in results)
        return results  # type: ignore[return-value]

    def _result(self, ok: bool, payload: Any, strategy: str, clock: Any,
                detail: str = "", raw: Any = None) -> EngineResult:
        """Wrap an outcome; ``clock`` is the request's
        :func:`repro.obs.trace.timer` — the one code path every
        ``EngineResult.elapsed`` flows through."""
        with self._lock:
            self.requests += 1
        return EngineResult(ok, payload, strategy, clock.elapsed,
                            self.stats, detail, raw)

    def __repr__(self) -> str:
        return f"<ExchangeEngine {self.compiled!r} requests={self.requests}>"


# --------------------------------------------------------------------- #
# Process-pool workers
# --------------------------------------------------------------------- #
#
# The compiled setting travels to each worker exactly once (through the pool
# initializer, which pickles ``initargs`` per worker); tasks then only carry
# the per-tree payload.  Workers rebuild plain EngineResults so the parent
# can merge them with cache-served results order-preservingly.  Exceptions
# raised here (ChaseError, precondition ValueErrors, ...) propagate through
# ``pool.map`` to the caller unchanged.

_WORKER_COMPILED: Optional[CompiledSetting] = None


def _process_worker_init(compiled: CompiledSetting) -> None:
    global _WORKER_COMPILED
    _WORKER_COMPILED = compiled


def _process_worker_run(task: Tuple[str, Any]) -> EngineResult:
    compiled = _WORKER_COMPILED
    assert compiled is not None, "worker used before initialisation"
    operation_name, item = task
    if operation_name == "solve":
        with obs_timer("engine.solve") as clock:
            outcome = canonical_solution(compiled.setting, item,
                                         compiled=compiled)
            return EngineResult(outcome.success, outcome.tree, "chase",
                                clock.elapsed, compiled.cache_stats(),
                                outcome.failure or "", outcome)
    if operation_name == "certain_answers":
        tree, query = item
        with obs_timer("engine.certain_answers") as clock:
            result = certain_answers(compiled.setting, tree, query,
                                     compiled=compiled)
            detail = ("" if result.has_solution
                      else "the source tree has no solution")
            return EngineResult(result.has_solution, result.answers,
                                "canonical-solution", clock.elapsed,
                                compiled.cache_stats(), detail, result)
    raise ValueError(f"unknown worker operation {operation_name!r}")
