"""The batch-first facade over the whole exchange pipeline.

:class:`ExchangeEngine` owns a :class:`~repro.engine.compiled.CompiledSetting`
and exposes every pipeline stage as a method returning a uniform
:class:`EngineResult` — success flag, payload, strategy used, wall-clock
timing and a cache-stats snapshot — instead of the four unrelated result
dataclasses of the functional API (which remains available and is what the
engine delegates to, handing it the compiled fast path).

Per-tree work (``solve``, ``certain_answers``) is embarrassingly parallel
across trees once the setting is compiled, so the ``*_batch`` methods fan it
out over a ``concurrent.futures`` thread pool.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from ..exchange.certain_answers import CertainAnswers, certain_answers
from ..exchange.chase import ChaseResult, canonical_solution
from ..exchange.consistency import ConsistencyResult, check_consistency
from ..exchange.dichotomy import DichotomyReport
from ..exchange.errors import NoSolutionError
from ..exchange.setting import DataExchangeSetting
from ..patterns.queries import Query
from ..xmlmodel.tree import XMLTree
from ..xmlmodel.values import NullFactory
from .compiled import CompiledSetting, compile_setting

__all__ = ["EngineResult", "ExchangeEngine"]

#: Strategy names accepted by :meth:`ExchangeEngine.check_consistency`.
CONSISTENCY_STRATEGIES = ("auto", "nested_relational", "general")


@dataclass
class EngineResult:
    """Uniform outcome of every engine operation.

    ``ok``
        Did the operation produce a defined payload?  ``False`` means "no
        solution exists" for ``solve`` / ``certain_answers`` and
        "inconsistent" for ``check_consistency`` — never an internal error
        (those raise).
    ``payload``
        The operation's primary value: a ``bool`` for consistency, the
        canonical-solution tree for ``solve``, the set of certain-answer
        tuples for ``certain_answers``, the dichotomy report for
        ``classify``.
    ``strategy``
        Which algorithm served the request (e.g. ``"nested-relational"``,
        ``"general"``, ``"chase"``).
    ``elapsed``
        Wall-clock seconds spent inside the engine for this request.
    ``cache``
        :meth:`CompiledSetting.cache_stats` snapshot taken after the request
        (cumulative counters; diff two snapshots to see per-request reuse).
    ``raw``
        The underlying functional-API result object
        (:class:`ConsistencyResult`, :class:`ChaseResult`,
        :class:`CertainAnswers`, :class:`DichotomyReport`) for callers that
        need the full detail.
    """

    ok: bool
    payload: Any
    strategy: str
    elapsed: float
    cache: Dict[str, int] = field(default_factory=dict)
    detail: str = ""
    raw: Any = None

    def __bool__(self) -> bool:
        return self.ok

    def unwrap(self) -> Any:
        """The payload, or :class:`NoSolutionError` when ``ok`` is false."""
        if not self.ok:
            raise NoSolutionError(self.detail or "operation produced no result")
        return self.payload


class ExchangeEngine:
    """A compiled, cached facade over consistency, the chase and certain
    answers.

    Build it from a setting (compiled on the spot) or from an explicitly
    precompiled :class:`CompiledSetting`; reuse it for any number of
    per-tree requests::

        engine = ExchangeEngine(setting)
        engine.check_consistency().payload        # True / False
        engine.solve(tree).payload                # canonical solution tree
        engine.certain_answers(tree, query).payload
        engine.certain_answers_batch(trees, query, parallel=4)
    """

    def __init__(self, compiled: Union[CompiledSetting, DataExchangeSetting]) -> None:
        if isinstance(compiled, DataExchangeSetting):
            compiled = compile_setting(compiled)
        if not isinstance(compiled, CompiledSetting):
            raise TypeError(
                f"expected a DataExchangeSetting or CompiledSetting, "
                f"got {type(compiled).__name__}")
        self.compiled = compiled
        self.requests = 0

    @property
    def setting(self) -> DataExchangeSetting:
        return self.compiled.setting

    @property
    def stats(self) -> Dict[str, int]:
        """Cumulative cache statistics of the compiled setting."""
        return self.compiled.cache_stats()

    # ------------------------------------------------------------------ #
    # Setting-level operations
    # ------------------------------------------------------------------ #

    def classify(self) -> EngineResult:
        """The dichotomy routing decision (Theorem 6.2): is this setting in
        the tractable class?  ``ok`` is always true; ``payload.tractable``
        carries the verdict."""
        started = time.perf_counter()
        report: DichotomyReport = self.compiled.dichotomy
        return self._result(True, report, "dichotomy", started,
                            detail=report.summary(), raw=report)

    def check_consistency(self, strategy: str = "auto",
                          **kwargs: Any) -> EngineResult:
        """Decide consistency (Section 4) with automatic strategy routing.

        ``strategy`` is ``"auto"`` (nested-relational fast path when both
        DTDs qualify), ``"nested_relational"`` (Theorem 4.5) or
        ``"general"`` (Theorem 4.1); extra keyword arguments reach the
        general procedure (e.g. ``max_source_trees``)."""
        started = time.perf_counter()
        normalised = strategy.replace("-", "_")
        if normalised not in CONSISTENCY_STRATEGIES:
            raise ValueError(
                f"unknown consistency strategy {strategy!r}; "
                f"expected one of {', '.join(CONSISTENCY_STRATEGIES)}")
        outcome: ConsistencyResult = check_consistency(
            self.setting, method=normalised.replace("_", "-"),
            compiled=self.compiled, **kwargs)
        return self._result(outcome.consistent, outcome.consistent,
                            outcome.method, started,
                            detail=outcome.detail, raw=outcome)

    # ------------------------------------------------------------------ #
    # Per-tree operations
    # ------------------------------------------------------------------ #

    def solve(self, source_tree: XMLTree,
              nulls: Optional[NullFactory] = None) -> EngineResult:
        """Chase ``cps(T)`` into the canonical solution ``T*`` (Section 6.1).

        ``ok`` is false — with the chase's failure reason in ``detail`` —
        when the source tree has no solution (Lemma 6.15 b)."""
        started = time.perf_counter()
        outcome: ChaseResult = canonical_solution(self.setting, source_tree,
                                                  nulls)
        return self._result(outcome.success, outcome.tree, "chase", started,
                            detail=outcome.failure or "", raw=outcome)

    def certain_answers(self, source_tree: XMLTree, query: Query,
                        variable_order: Optional[Sequence[str]] = None,
                        nulls: Optional[NullFactory] = None) -> EngineResult:
        """``certain(Q, T)`` via the canonical solution (Theorem 6.2).

        ``payload`` is the set of all-constant answer tuples; ``ok`` is
        false when the source tree has no solution."""
        started = time.perf_counter()
        outcome: CertainAnswers = certain_answers(
            self.setting, source_tree, query, variable_order, nulls,
            compiled=self.compiled)
        detail = "" if outcome.has_solution else "the source tree has no solution"
        return self._result(outcome.has_solution, outcome.answers,
                            "canonical-solution", started,
                            detail=detail, raw=outcome)

    def certain_answer_boolean(self, source_tree: XMLTree,
                               query: Query) -> EngineResult:
        """Boolean certain answers; ``payload`` is ``True`` / ``False`` and
        ``ok`` is false (payload ``None``) when no solution exists."""
        result = self.certain_answers(source_tree, query)
        payload = bool(result.payload) if result.ok else None
        return EngineResult(result.ok, payload, result.strategy,
                            result.elapsed, result.cache, result.detail,
                            result.raw)

    # ------------------------------------------------------------------ #
    # Batch operations
    # ------------------------------------------------------------------ #

    def solve_batch(self, source_trees: Sequence[XMLTree],
                    parallel: Optional[int] = None) -> List[EngineResult]:
        """Canonical solutions for many source trees (order-preserving)."""
        return self._map(self.solve, list(source_trees), parallel)

    def certain_answers_batch(self, source_trees: Sequence[XMLTree],
                              queries: Union[Query, Sequence[Query]],
                              parallel: Optional[int] = None
                              ) -> List[EngineResult]:
        """``certain(Q_i, T_i)`` for many trees (order-preserving).

        ``queries`` is either a single query evaluated against every tree or
        a sequence paired elementwise with ``source_trees``.  ``parallel=N``
        fans the per-tree work out over ``N`` worker threads — the compiled
        setting is shared read-only, each request gets its own null factory.
        """
        trees = list(source_trees)
        if isinstance(queries, Query):
            pairs = [(tree, queries) for tree in trees]
        else:
            query_list = list(queries)
            if len(query_list) != len(trees):
                raise ValueError(
                    f"{len(trees)} source tree(s) but {len(query_list)} "
                    "query/queries; pass one query or exactly one per tree")
            pairs = list(zip(trees, query_list))
        return self._map(lambda pair: self.certain_answers(*pair), pairs,
                         parallel)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _map(self, operation: Callable[[Any], EngineResult],
             items: List[Any], parallel: Optional[int]) -> List[EngineResult]:
        if parallel is not None and parallel > 1 and len(items) > 1:
            workers = min(parallel, len(items))
            with ThreadPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(operation, items))
        return [operation(item) for item in items]

    def _result(self, ok: bool, payload: Any, strategy: str, started: float,
                detail: str = "", raw: Any = None) -> EngineResult:
        self.requests += 1
        return EngineResult(ok, payload, strategy,
                            time.perf_counter() - started,
                            self.compiled.cache_stats(), detail, raw)

    def __repr__(self) -> str:
        return f"<ExchangeEngine {self.compiled!r} requests={self.requests}>"
