"""Compile-once state for a data exchange setting.

Everything the pipeline can derive from the triple ``(D_S, D_T, Σ_ST)`` alone
— and therefore everything that is wasted work when recomputed per request —
lives here:

* the per-element content-model machinery of **both** DTDs (regex→NFA,
  semilinear sets, the univocality analyses of Definition 6.9), forced into
  the DTD rule caches eagerly;
* the structural verdicts: per-STD classification and the fully-specified
  flag (Theorem 5.11 / Definition 5.10), nested-relational detection
  (Theorem 4.5), source-DTD satisfiability, the Section-4 distinct-variable
  proviso;
* the :func:`~repro.exchange.dichotomy.classify_setting` routing decision;
* reusable consistency machinery: the attribute-erased dependencies of
  Claim 4.2, the target-side goal search (whose memo table persists across
  requests), the ⪯-minimal source-skeleton enumeration, and the unique
  ``D°_S`` / ``D*_T`` trees of the nested-relational algorithm;
* compiled evaluation plans (:mod:`repro.patterns.plan`): every STD source
  pattern lowered once at compile time, plus a bounded, counted LRU of
  per-query plans keyed by ``Query.fingerprint()`` — the request path runs
  slot-based plans over frozen trees instead of interpreting pattern ASTs.

All of it is observable through :meth:`CompiledSetting.cache_stats`, whose
miss counters prove (for tests and benchmarks) that a warm engine never
recompiles an NFA or re-runs an analysis.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

from ..exchange.consistency import _GoalSearch, minimal_source_skeletons
from ..exchange.dichotomy import DichotomyReport, classify_setting
from ..exchange.setting import DataExchangeSetting
from ..patterns.formula import TreePattern
from ..patterns.plan import (PatternPlan, PlanCache, QueryPlan,
                             compile_pattern)
from ..patterns.queries import Query
from ..regexlang.univocal import RegexAnalysis
from ..xmlmodel.tree import XMLTree
from .stats import CacheStats

__all__ = ["CompiledSetting", "compile_setting", "DEFAULT_PLAN_CACHE_MAXSIZE"]

#: Default bound on the per-setting query-plan cache.  Plans are small
#: (slot tables + op tuples), but the cache is keyed by query fingerprint
#: and a long-lived shard sees an open-ended query stream — bounded LRU
#: keeps the worst case flat while any realistic working set stays warm.
DEFAULT_PLAN_CACHE_MAXSIZE = 256


class CompiledSetting:
    """Precompiled, request-independent state of a
    :class:`~repro.exchange.setting.DataExchangeSetting`.

    Construction performs every setting-level computation eagerly (or, for
    the potentially expensive skeleton enumeration, memoises it on first
    use); afterwards the object is read-only from the pipeline's point of
    view and can be shared across threads serving per-tree requests (lazy
    memoisation is lock-protected; the hit *counters* of the underlying DTD
    rule caches are best-effort under concurrency — miss counters only move
    on real recompilations, which the compile phase has already exhausted).
    """

    def __init__(self, setting: DataExchangeSetting,
                 plan_cache_maxsize: Optional[int] = DEFAULT_PLAN_CACHE_MAXSIZE
                 ) -> None:
        self.setting = setting
        self.stats = CacheStats()

        # --- per-element content-model machinery (compile phase 1) ------- #
        setting.source_dtd.precompile_rules()
        setting.target_dtd.precompile_rules()
        self.source_analyses: Dict[str, RegexAnalysis] = {
            element: setting.source_dtd.rule_analysis(element)
            for element in setting.source_dtd.element_types}
        self.target_analyses: Dict[str, RegexAnalysis] = {
            element: setting.target_dtd.rule_analysis(element)
            for element in setting.target_dtd.element_types}

        # --- routing decision and structural verdicts (compile phase 2) --- #
        # The dichotomy report is the single source of truth for the
        # STD classification and the per-element univocality verdicts.
        self.dichotomy: DichotomyReport = classify_setting(setting)
        self.std_classes: List[str] = list(self.dichotomy.std_classes)
        self.fully_specified: bool = self.dichotomy.fully_specified
        self.univocality: Dict[str, bool] = {
            element: bool(info["univocal"])
            for element, info in self.dichotomy.target_rules.items()}
        self.target_univocal: bool = self.dichotomy.target_univocal
        self.source_nested_relational: bool = \
            setting.source_dtd.is_nested_relational()
        self.target_nested_relational: bool = \
            setting.target_dtd.is_nested_relational()
        self.nested_relational: bool = (self.source_nested_relational
                                        and self.target_nested_relational)
        self.source_satisfiable: bool = setting.source_dtd.is_satisfiable()
        self.distinct_source_variables: bool = \
            setting.has_distinct_source_variables()
        self.erased_stds: List[Tuple[TreePattern, TreePattern]] = [
            (dep.source.erase_attributes(), dep.target.erase_attributes())
            for dep in setting.stds]

        # --- compiled evaluation plans (compile phase 3) ------------------ #
        # STD source patterns are lowered once here: every pre-solution
        # evaluates them as slot-based plans over the frozen source tree.
        self.std_source_plans: List[PatternPlan] = [
            compile_pattern(dep.source) for dep in setting.stds]
        #: Bounded LRU of per-query evaluation plans, keyed by
        #: ``Query.fingerprint()``.  Hits/misses/evictions are recorded into
        #: this setting's :class:`CacheStats` as ``plan_cache_*``, so they
        #: surface in every ``EngineResult.cache`` snapshot, in
        #: ``ExchangeEngine.stats_summary()`` and in the serving layer's
        #: shard/registry stats.
        self.plan_cache = PlanCache(maxsize=plan_cache_maxsize,
                                    stats=self.stats)

        # --- lazily memoised heavy machinery ------------------------------ #
        self._lock = threading.Lock()
        self._goal_search: Optional[_GoalSearch] = None
        self._skeletons: Dict[Tuple[int, Optional[int]],
                              Tuple[List[XMLTree], bool]] = {}
        self._nr_skeletons: Optional[Tuple[XMLTree, XMLTree]] = None

        # Baselines so cache_stats reports movement *since compilation*:
        # misses after this point are genuine recompilations.
        self._rule_baseline = self._rule_counts()

    # ------------------------------------------------------------------ #
    # Pickling (process-parallel batch execution)
    # ------------------------------------------------------------------ #

    def __getstate__(self) -> dict:
        """Everything but the lock travels: a compiled setting shipped to a
        worker process arrives warm (NFAs, analyses, verdicts, memo tables)
        and never recompiles, which is what makes process-parallel batches
        profitable."""
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Derived machinery (memoised, instrumented)
    # ------------------------------------------------------------------ #

    def check_owns(self, setting: DataExchangeSetting) -> None:
        """Guard for the ``compiled=`` fast paths: raise unless this compiled
        state was built from exactly the given setting object (a mismatched
        handle would silently answer for the wrong setting)."""
        if setting is not self.setting:
            raise ValueError(
                "the compiled= handle was built from a different "
                "DataExchangeSetting than the one passed to this call; "
                "compile_setting() the setting you are querying")

    def query_plan(self, query: Query) -> QueryPlan:
        """The compiled evaluation plan for ``query`` (cached, counted).

        The first request for a query fingerprint compiles the plan
        (``plan_cache_misses``); every later evaluation of the same query on
        this setting — and on every process-pool worker it was shipped to
        afterwards — reuses it (``plan_cache_hits``)."""
        return self.plan_cache.get(query)

    def goal_search(self) -> _GoalSearch:
        """The target-side goal search of Section 4.  One instance per
        compiled setting: its (state → satisfiable) memo table accumulates
        across consistency checks."""
        with self._lock:
            if self._goal_search is None:
                self.stats.miss("goal_search")
                self._goal_search = _GoalSearch(self.setting.target_dtd)
            else:
                self.stats.hit("goal_search")
            return self._goal_search

    def source_skeletons(self, max_trees: int = 2000,
                         max_depth: Optional[int] = None
                         ) -> Tuple[List[XMLTree], bool]:
        """The ⪯-minimal source skeletons (memoised per enumeration cap)."""
        key = (max_trees, max_depth)
        with self._lock:
            cached = self._skeletons.get(key)
            if cached is None:
                self.stats.miss("skeletons")
                cached = minimal_source_skeletons(
                    self.setting.source_dtd, max_trees=max_trees,
                    max_depth=max_depth)
                self._skeletons[key] = cached
            else:
                self.stats.hit("skeletons")
            return cached

    def nested_relational_skeletons(self) -> Tuple[XMLTree, XMLTree]:
        """The unique trees of ``D°_S`` and ``D*_T`` (Theorem 4.5)."""
        if not self.nested_relational:
            raise ValueError("the setting is not nested-relational")
        with self._lock:
            if self._nr_skeletons is None:
                self.stats.miss("nr_skeletons")
                self._nr_skeletons = (
                    self.setting.source_dtd.nested_relational_lower().unique_tree(),
                    self.setting.target_dtd.nested_relational_upper().unique_tree())
            else:
                self.stats.hit("nr_skeletons")
            return self._nr_skeletons

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #

    def _rule_counts(self) -> Tuple[int, int]:
        source = self.setting.source_dtd.rule_cache_info()
        target = self.setting.target_dtd.rule_cache_info()
        return (source["hits"] + target["hits"],
                source["misses"] + target["misses"])

    def cache_stats(self) -> Dict[str, int]:
        """A flat snapshot of every cache owned by this compiled setting.

        ``rule_cache_misses`` counts regex→NFA/analysis compilations in
        either DTD **since compilation finished** — a warm pipeline keeps it
        at zero, which is exactly what the reuse tests assert.
        """
        hits, misses = self._rule_counts()
        base_hits, base_misses = self._rule_baseline
        self.stats.set_counts("rule_cache", hits - base_hits,
                              misses - base_misses)
        return self.stats.snapshot()

    def __repr__(self) -> str:
        verdict = []
        if self.nested_relational:
            verdict.append("nested-relational")
        if self.fully_specified:
            verdict.append("fully-specified")
        if self.target_univocal:
            verdict.append("univocal-target")
        return (f"<CompiledSetting {self.setting!r} "
                f"[{', '.join(verdict) or 'general'}]>")


def compile_setting(setting: DataExchangeSetting,
                    plan_cache_maxsize: Optional[int] = DEFAULT_PLAN_CACHE_MAXSIZE
                    ) -> CompiledSetting:
    """Precompute everything derivable from ``(D_S, D_T, Σ_ST)`` alone.

    The returned :class:`CompiledSetting` is the unit of reuse of the engine
    API: build it once per setting, then serve any number of per-tree
    requests (consistency checks, chases, certain-answer queries) without
    recompiling DTD content models, re-deriving structural verdicts or
    re-lowering query plans (``plan_cache_maxsize`` bounds the per-query
    plan LRU; ``None`` keeps it unbounded).
    """
    return CompiledSetting(setting, plan_cache_maxsize=plan_cache_maxsize)
