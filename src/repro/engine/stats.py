"""Cache-hit/miss accounting for compiled settings and engines.

A :class:`CacheStats` object is a small named-counter registry.  Every cache
owned by a :class:`~repro.engine.compiled.CompiledSetting` records its hits
and misses here, so callers (and the test-suite) can *prove* that a warm
engine reuses precompiled state instead of rebuilding it — e.g. that a second
``certain_answers`` call performs zero NFA recompilations.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

__all__ = ["CacheStats", "EngineStats"]


@dataclass(frozen=True)
class EngineStats:
    """A point-in-time summary of one :class:`~repro.engine.ExchangeEngine`.

    ``result_cache_*`` counters describe the engine-level result cache keyed
    by ``(tree_fingerprint, query_fingerprint)``; ``plan_cache_*`` counters
    describe the compiled setting's query-plan cache keyed by
    ``Query.fingerprint()`` (a warm engine evaluates every repeated query
    through a cached plan — ``plan_cache_misses`` stops moving after the
    first evaluation of each query); ``counters`` is the full merged
    snapshot (compiled-setting caches plus engine caches) that every
    :class:`~repro.engine.EngineResult` also carries in its ``cache`` field.
    ``result_cache_maxsize`` is ``None`` for an unbounded cache (the batch-job
    default); a bounded cache reports LRU evictions in
    ``result_cache_evictions``.
    """

    requests: int
    result_cache_hits: int
    result_cache_misses: int
    result_cache_entries: int
    result_cache_evictions: int = 0
    result_cache_maxsize: Optional[int] = None
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    plan_cache_evictions: int = 0
    plan_cache_entries: int = 0
    #: Evaluation-strategy accounting: one event per pattern-plan run,
    #: split by which evaluator served it (the structural join over the
    #: pre/post plane vs the bottom-up recurrence — see
    #: :mod:`repro.patterns.plan`).
    plan_join_runs: int = 0
    plan_recurrence_runs: int = 0
    #: Corpus-store resolution counters (all zero with no store attached):
    #: ``store_hits`` / ``store_misses`` count fingerprint-addressed tree
    #: resolutions; ``store_bytes`` accumulates record bytes read off the
    #: store heap (cache-served resolutions move hits but not bytes).
    store_hits: int = 0
    store_misses: int = 0
    store_bytes: int = 0
    counters: Dict[str, int] = field(default_factory=dict)


class CacheStats:
    """Named hit/miss counters with cheap snapshot/delta arithmetic."""

    def __init__(self) -> None:
        self._hits: Counter = Counter()
        self._misses: Counter = Counter()
        self._evictions: Counter = Counter()
        self._events: Counter = Counter()

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #

    def hit(self, name: str, count: int = 1) -> None:
        self._hits[name] += count

    def miss(self, name: str, count: int = 1) -> None:
        self._misses[name] += count

    def evict(self, name: str, count: int = 1) -> None:
        """Record ``count`` capacity evictions from the cache ``name``."""
        self._evictions[name] += count

    def count(self, name: str, count: int = 1) -> None:
        """Record ``count`` occurrences of the plain event ``name``.

        Events are one-sided counters (no hit/miss pairing): prewarm
        compiles, quota rejections, and the like.  They appear in
        :meth:`snapshot` under their own name, verbatim.
        """
        self._events[name] += count

    def set_counts(self, name: str, hits: int, misses: int) -> None:
        """Overwrite both counters of ``name`` (used for caches that keep
        their own counts, such as the per-DTD rule caches)."""
        self._hits[name] = hits
        self._misses[name] = misses

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #

    def hits(self, name: str) -> int:
        return self._hits[name]

    def misses(self, name: str) -> int:
        return self._misses[name]

    def evictions(self, name: str) -> int:
        return self._evictions[name]

    def counts(self, name: str) -> int:
        return self._events[name]

    @property
    def total_hits(self) -> int:
        return sum(self._hits.values())

    @property
    def total_misses(self) -> int:
        return sum(self._misses.values())

    def snapshot(self) -> Dict[str, int]:
        """A flat ``{"<name>_hits": n, "<name>_misses": m, "<name>_evictions":
        e}`` mapping (evictions reported only for caches that recorded any;
        plain event counters recorded via :meth:`count` appear verbatim)."""
        flat: Dict[str, int] = {}
        for name in sorted(set(self._hits) | set(self._misses)):
            flat[f"{name}_hits"] = self._hits[name]
            flat[f"{name}_misses"] = self._misses[name]
        for name in sorted(self._evictions):
            flat[f"{name}_evictions"] = self._evictions[name]
        for name in sorted(self._events):
            flat[name] = self._events[name]
        return flat

    @staticmethod
    def delta(before: Mapping[str, int], after: Mapping[str, int]) -> Dict[str, int]:
        """Counter movement between two :meth:`snapshot` results."""
        return {key: after.get(key, 0) - before.get(key, 0)
                for key in set(before) | set(after)}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CacheStats hits={self.total_hits} misses={self.total_misses}>"
