"""Unranked nondeterministic finite tree automata (UNFTA), Appendix A.

An UNFTA over an alphabet ``Γ`` is ``A = (Q, δ, F)`` where ``δ(q, a)`` is a
*regular* language over ``Q`` (represented here by an NFA over state names):
a run assigns a state to each node such that for every node ``v`` labelled
``a`` with children states ``q_1 … q_n``, the word ``q_1 … q_n`` belongs to
``δ(run(v), a)``.  A tree is accepted iff some run maps the root to an
accepting state.

The module provides run search / membership on explicit trees, emptiness
(computed by the usual least-fixpoint over "reachable" states, with the
horizontal step decided through NFA reachability over sub-alphabets), the
product construction used by the consistency algorithm of Theorem 4.1, and
the translation from DTDs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Sequence, Set, Tuple

from ..regexlang.nfa import NFA, regex_to_nfa
from ..xmlmodel.dtd import DTD
from ..xmlmodel.tree import XMLTree

__all__ = ["UNFTA", "dtd_to_automaton", "product_automaton"]

State = str


@dataclass
class UNFTA:
    """An unranked tree automaton with NFA-represented horizontal languages."""

    states: Set[State]
    #: ``transitions[(state, label)]`` is an NFA over the state alphabet.
    transitions: Dict[Tuple[State, str], NFA]
    accepting: Set[State]
    alphabet: Set[str]

    # ------------------------------------------------------------------ #
    # Runs on explicit trees
    # ------------------------------------------------------------------ #

    def states_at(self, tree: XMLTree, node: int,
                  cache: Optional[Dict[int, Set[State]]] = None) -> Set[State]:
        """All states assignable to ``node`` by some run on its subtree."""
        if cache is None:
            cache = {}
        if node in cache:
            return cache[node]
        label = tree.label(node)
        child_state_sets = [self.states_at(tree, child, cache)
                            for child in tree.children(node)]
        possible: Set[State] = set()
        for state in self.states:
            nfa = self.transitions.get((state, label))
            if nfa is None:
                continue
            if _accepts_some_product(nfa, child_state_sets):
                possible.add(state)
        cache[node] = possible
        return possible

    def accepts(self, tree: XMLTree) -> bool:
        """Is there an accepting run on the tree?"""
        return bool(self.states_at(tree, tree.root) & self.accepting)

    # ------------------------------------------------------------------ #
    # Emptiness
    # ------------------------------------------------------------------ #

    def reachable_states(self) -> Set[State]:
        """States assigned to the root of *some* finite tree."""
        reachable: Set[State] = set()
        changed = True
        while changed:
            changed = False
            for (state, _label), nfa in self.transitions.items():
                if state in reachable:
                    continue
                if not nfa.restricted_to(reachable).is_empty():
                    reachable.add(state)
                    changed = True
        return reachable

    def is_empty(self) -> bool:
        """Does the automaton accept no tree?"""
        return not (self.reachable_states() & self.accepting)

    def __repr__(self) -> str:
        return (f"<UNFTA |Q|={len(self.states)} |Σ|={len(self.alphabet)} "
                f"|F|={len(self.accepting)}>")


def _accepts_some_product(nfa: NFA, child_state_sets: Sequence[Set[State]]) -> bool:
    """Does the NFA accept some word ``q_1 … q_n`` with ``q_i`` drawn from the
    i-th child's possible-state set?"""
    current = nfa.epsilon_closure({nfa.start})
    frontier = {current}
    for options in child_state_sets:
        next_frontier = set()
        for states in frontier:
            for symbol in options:
                stepped = nfa.step(states, symbol)
                if stepped:
                    next_frontier.add(stepped)
        if not next_frontier:
            return False
        frontier = next_frontier
    return any(any(s in nfa.accepting for s in states) for states in frontier)


def dtd_to_automaton(dtd: DTD) -> UNFTA:
    """The natural automaton ``A_D`` of Appendix A: states are element types,
    ``δ(ℓ, ℓ)`` is an automaton for ``P(ℓ)`` and the only accepting state is
    the root type.  ``L(A_D)`` is the set of label skeletons of ``SAT(D)``."""
    states = set(dtd.element_types)
    transitions: Dict[Tuple[State, str], NFA] = {}
    for element in states:
        transitions[(element, element)] = regex_to_nfa(dtd.content_model(element))
    return UNFTA(states=states,
                 transitions=transitions,
                 accepting={dtd.root},
                 alphabet=set(states))


def product_automaton(first: UNFTA, second: UNFTA) -> UNFTA:
    """The product automaton recognising ``L(A) ∩ L(B)`` (over the union of
    the alphabets; a label missing from one automaton's transitions blocks)."""
    alphabet = first.alphabet | second.alphabet
    states = {_pair(p, q) for p in first.states for q in second.states}
    transitions: Dict[Tuple[State, str], NFA] = {}
    for p in first.states:
        for q in second.states:
            for label in alphabet:
                left = first.transitions.get((p, label))
                right = second.transitions.get((q, label))
                if left is None or right is None:
                    continue
                transitions[(_pair(p, q), label)] = _product_nfa(left, right,
                                                                 first.states,
                                                                 second.states)
    accepting = {_pair(p, q) for p in first.accepting for q in second.accepting}
    return UNFTA(states=states, transitions=transitions,
                 accepting=accepting, alphabet=alphabet)


def _pair(p: State, q: State) -> State:
    return f"({p}⊗{q})"


def _product_nfa(left: NFA, right: NFA, left_states: Set[State],
                 right_states: Set[State]) -> NFA:
    """Product of two horizontal NFAs reading *pair* states: the pair word
    ``(p_1,q_1)…(p_n,q_n)`` is accepted iff ``p_1…p_n ∈ L(left)`` and
    ``q_1…q_n ∈ L(right)``."""
    # Lazily constructed product over subset states.
    start_left = left.epsilon_closure({left.start})
    start_right = right.epsilon_closure({right.start})
    index: Dict[Tuple[FrozenSet[int], FrozenSet[int]], int] = {}
    result = NFA(n_states=0, start=0, accepting=set())

    def state_id(pair: Tuple[FrozenSet[int], FrozenSet[int]]) -> int:
        if pair not in index:
            index[pair] = len(index)
            result.n_states = len(index)
            l_set, r_set = pair
            if (any(s in left.accepting for s in l_set)
                    and any(s in right.accepting for s in r_set)):
                result.accepting.add(index[pair])
        return index[pair]

    start_id = state_id((start_left, start_right))
    result.start = start_id
    frontier = [(start_left, start_right)]
    seen = {(start_left, start_right)}
    while frontier:
        l_set, r_set = frontier.pop()
        src = state_id((l_set, r_set))
        for p in left_states:
            for q in right_states:
                l_next = left.step(l_set, p)
                r_next = right.step(r_set, q)
                if not l_next or not r_next:
                    continue
                dst = state_id((l_next, r_next))
                result.add_transition(src, _pair(p, q), dst)
                if (l_next, r_next) not in seen:
                    seen.add((l_next, r_next))
                    frontier.append((l_next, r_next))
    return result
