"""Unranked tree automata (paper, Appendix A)."""

from .unranked import UNFTA, dtd_to_automaton, product_automaton

__all__ = ["UNFTA", "dtd_to_automaton", "product_automaton"]
