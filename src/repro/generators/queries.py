"""Seeded random generation of CTQ//,∪ queries against a target DTD.

Queries are built from root-down paths in the target DTD graph (the trees
they will be evaluated on are canonical solutions, which conform to that
DTD), with attribute comparisons against variables or pool constants.  Three
shapes are produced:

* ``"pattern"`` — a single tree-pattern atom,
* ``"exists"``  — the atom with a random subset of its variables projected
  away,
* ``"union"``   — a union of two exists-projections sharing the same free
  variables (the CTQ∪ fragment).

Each artifact records ``(seed, spec)`` with the query's string rendering and
fragment classification, so failing property-harness cases can be replayed
exactly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..patterns.formula import Variable
from ..patterns.queries import (Query, classify_query, exists, pattern_query,
                                union_query)
from ..xmlmodel.dtd import DTD
from .paths import path_pattern, random_path

__all__ = ["GeneratedQuery", "generate_query", "generate_queries",
           "QUERY_KINDS"]

QUERY_KINDS = ("pattern", "exists", "union")


@dataclass(frozen=True)
class GeneratedQuery:
    """A reproducible query artifact: the object plus its ``(seed, spec)``."""

    seed: int
    query: Query
    #: ``{"kind": ..., "fragment": ..., "text": ...}``.
    spec: Dict[str, str]


def generate_query(target_dtd: DTD, seed: int, kind: Optional[str] = None,
                   max_path: int = 3, constant_probability: float = 0.25,
                   value_pool: int = 8) -> GeneratedQuery:
    """Generate one query against ``target_dtd``.

    ``kind`` is one of :data:`QUERY_KINDS` (seed-chosen when omitted);
    ``value_pool`` matches the constant pool of the tree generator so that
    constant comparisons can actually hit generated values.
    """
    rng = random.Random(("query", seed, kind, max_path, constant_probability,
                         value_pool).__repr__())
    chosen = kind or rng.choice(QUERY_KINDS)
    if chosen not in QUERY_KINDS:
        raise ValueError(f"unknown query kind {chosen!r}; "
                         f"expected one of {QUERY_KINDS}")

    first = _path_atom(target_dtd, rng, max_path, constant_probability,
                       value_pool, prefix="q")
    if chosen == "pattern":
        query: Query = first
    elif chosen == "exists":
        query = _project_some(first, rng)
    else:
        second = _path_atom(target_dtd, rng, max_path, constant_probability,
                            value_pool, prefix="q")
        shared = sorted(set(first.free_variables())
                        & set(second.free_variables()))
        left = exists([v for v in first.free_variables() if v not in shared],
                      first)
        right = exists([v for v in second.free_variables() if v not in shared],
                       second)
        query = union_query(left, right)
    spec = {"kind": chosen, "fragment": classify_query(query),
            "text": str(query)}
    return GeneratedQuery(seed, query, spec)


def generate_queries(target_dtd: DTD, count: int, seed: int,
                     **knobs) -> List[GeneratedQuery]:
    """``count`` independent queries with seeds derived from ``seed``."""
    rng = random.Random(("queries", seed, count).__repr__())
    return [generate_query(target_dtd, rng.randrange(2 ** 31), **knobs)
            for _ in range(count)]


# --------------------------------------------------------------------- #
# Internals
# --------------------------------------------------------------------- #

def _path_atom(dtd: DTD, rng: random.Random, max_path: int,
               constant_probability: float, value_pool: int, prefix: str):
    """A single-pattern query along a random root-down path of the DTD."""
    path = random_path(dtd, rng, max_path, stop_probability=0.2)
    counter = [0]

    def term(_attr: str):
        if rng.random() < constant_probability:
            return f"v{rng.randrange(value_pool)}"
        counter[0] += 1
        return Variable(f"{prefix}{counter[0]}")

    return pattern_query(path_pattern(dtd, path, term))


def _project_some(atom, rng: random.Random) -> Query:
    """Existentially project a random (possibly empty) variable subset."""
    free = atom.free_variables()
    if not free:
        return atom
    keep = rng.randint(0, len(free))
    projected = rng.sample(free, k=len(free) - keep)
    return exists(projected, atom)
