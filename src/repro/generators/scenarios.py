"""Full random data-exchange scenarios: setting + source trees + queries.

A *scenario* is everything one engine exercise needs: a data exchange
setting ``(D_S, D_T, Σ_ST)``, a batch of conforming source trees and a batch
of queries against the target DTD — all derived from a single seed, with the
per-artifact seeds and specs recorded so any scenario can be rebuilt (or
narrowed down) from its ``spec`` alone.

Profiles
--------

``"nested_relational"``
    Both DTDs nested-relational — the tractable Clio class: consistency via
    Theorem 4.5, certain answers in polynomial time (Corollary 6.11).
``"general"``
    A general (but still univocal-target) source DTD with a
    nested-relational target, exercising the general consistency procedure
    while keeping the chase well defined.
``"mixed"``
    Seed-chosen between the two, weighted toward nested-relational.

The target DTD is always univocal by construction *and verified* here
(``is_univocal()``), so the chase never hits the undefined non-univocal
merge; no-solution outcomes (attribute clashes, unrepairable words) remain
reachable and are part of what the property harness checks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List

from ..exchange.setting import DataExchangeSetting
from ..patterns.queries import Query
from ..xmlmodel.tree import XMLTree
from .dtds import generate_dtd
from .queries import generate_queries
from .stds import generate_stds
from .trees import generate_trees

__all__ = ["Scenario", "generate_scenario", "scenario_batch",
           "SCENARIO_PROFILES"]

SCENARIO_PROFILES = ("nested_relational", "general", "mixed")

#: How many fresh seeds to try before giving up on a univocal target DTD
#: (nested-relational targets always succeed on the first try).
_UNIVOCAL_RETRIES = 8


@dataclass(frozen=True)
class Scenario:
    """One reproducible engine workload."""

    seed: int
    profile: str
    setting: DataExchangeSetting
    source_trees: List[XMLTree]
    queries: List[Query]
    #: Nested spec: the DTD/STD/tree/query sub-specs plus their seeds.
    spec: Dict[str, object] = field(default_factory=dict)

    def describe(self) -> str:
        """One-line summary for logs and failure messages."""
        return (f"scenario seed={self.seed} profile={self.profile} "
                f"|E_S|={len(self.setting.source_dtd.element_types)} "
                f"|E_T|={len(self.setting.target_dtd.element_types)} "
                f"|Σ|={len(self.setting.stds)} "
                f"trees={len(self.source_trees)} queries={len(self.queries)}")


def generate_scenario(seed: int, profile: str = "mixed", n_trees: int = 3,
                      n_queries: int = 2, n_stds: int = 2,
                      n_elements: int = 5, max_depth: int = 4,
                      max_repeat: int = 3, value_pool: int = 6) -> Scenario:
    """Generate one scenario.  Same seed and knobs ⇒ identical scenario."""
    if profile not in SCENARIO_PROFILES:
        raise ValueError(f"unknown scenario profile {profile!r}; "
                         f"expected one of {SCENARIO_PROFILES}")
    rng = random.Random(("scenario", seed, profile, n_trees, n_queries,
                         n_stds, n_elements).__repr__())
    resolved = profile
    if resolved == "mixed":
        resolved = "nested_relational" if rng.random() < 0.6 else "general"
    source_profile = ("nested_relational" if resolved == "nested_relational"
                      else "general")

    source = generate_dtd(rng.randrange(2 ** 31), profile=source_profile,
                          n_elements=n_elements, prefix="s")
    # The target must be univocal for the chase-based pipeline; regenerate on
    # the (rare) seeds where a generated content model falls outside C_U.
    target = None
    for _ in range(_UNIVOCAL_RETRIES):
        candidate = generate_dtd(rng.randrange(2 ** 31),
                                 profile="nested_relational",
                                 n_elements=n_elements, prefix="t")
        if candidate.dtd.is_univocal():  # pragma: no branch
            target = candidate
            break
    if target is None:  # pragma: no cover - nested-relational ⇒ univocal
        raise RuntimeError("could not generate a univocal target DTD")

    stds = generate_stds(source.dtd, target.dtd, n_stds,
                         rng.randrange(2 ** 31), value_pool=value_pool)
    setting = DataExchangeSetting(source.dtd, target.dtd,
                                  [g.std for g in stds])
    trees = generate_trees(source.dtd, n_trees, rng.randrange(2 ** 31),
                           max_depth=max_depth, max_repeat=max_repeat,
                           value_pool=value_pool)
    queries = generate_queries(target.dtd, n_queries, rng.randrange(2 ** 31),
                               value_pool=value_pool)
    spec = {
        "seed": seed,
        "profile": profile,
        "resolved_profile": resolved,
        "source_dtd": {"seed": source.seed, **source.spec},
        "target_dtd": {"seed": target.seed, **target.spec},
        "stds": [{"seed": g.seed, **g.spec} for g in stds],
        "trees": [{"seed": g.seed, **g.spec} for g in trees],
        "queries": [{"seed": g.seed, **g.spec} for g in queries],
    }
    return Scenario(seed, resolved, setting, [g.tree for g in trees],
                    [g.query for g in queries], spec)


def scenario_batch(count: int, seed: int, profile: str = "mixed",
                   **knobs) -> List[Scenario]:
    """``count`` scenarios with per-scenario seeds derived from ``seed``."""
    rng = random.Random(("batch", seed, count, profile).__repr__())
    return [generate_scenario(rng.randrange(2 ** 31), profile=profile, **knobs)
            for _ in range(count)]
