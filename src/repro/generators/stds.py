"""Seeded random generation of source-to-target dependencies.

An STD is generated from a root-down path in the source DTD graph and a
root-down path in the target DTD graph.  Source-side attributes bind fresh,
pairwise-distinct variables (so the Section 4 proviso holds for every
generated STD); target-side attributes bind either an exported source
variable, a fresh existential variable, or — with small, tunable probability
— a constant (constants make inconsistent settings and no-solution source
trees reachable, which the property harness wants to see).

Because the target pattern is rooted at the target DTD's root and uses
neither ``//`` nor the wildcard, every generated STD is *fully specified*
(Definition 5.10), which keeps the certain-answers pipeline applicable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

from ..exchange.std import STD
from ..patterns.formula import Variable
from ..xmlmodel.dtd import DTD
from .paths import path_pattern, random_path

__all__ = ["GeneratedSTD", "generate_std", "generate_stds"]


@dataclass(frozen=True)
class GeneratedSTD:
    """A reproducible STD artifact: the object plus its ``(seed, spec)``."""

    seed: int
    std: STD
    #: ``{"source": str, "target": str}`` — the two patterns in the concrete
    #: syntax of :func:`repro.parse_pattern`.
    spec: Dict[str, str]


def generate_std(source_dtd: DTD, target_dtd: DTD, seed: int,
                 max_path: int = 3, constant_probability: float = 0.1,
                 value_pool: int = 8) -> GeneratedSTD:
    """Generate one fully-specified STD over the DTD pair.

    ``max_path`` bounds the length of both pattern paths; ``value_pool``
    matches the constant pool of :mod:`repro.generators.trees` so target-side
    constants can actually collide with generated source values.
    """
    rng = random.Random(("std", seed, max_path, constant_probability,
                         value_pool).__repr__())
    source_path = random_path(source_dtd, rng, max_path,
                              stop_probability=0.25)
    target_path = random_path(target_dtd, rng, max_path,
                              stop_probability=0.25)

    counter = [0]
    source_vars: List[str] = []

    def fresh_source_var() -> Variable:
        counter[0] += 1
        name = f"x{counter[0]}"
        source_vars.append(name)
        return Variable(name)

    source_pattern = path_pattern(
        source_dtd, source_path,
        lambda _attr: fresh_source_var())

    existential = [0]

    def target_term(_attr: str):
        roll = rng.random()
        if roll < constant_probability:
            return f"v{rng.randrange(value_pool)}"
        if source_vars and roll < 0.65:
            return Variable(rng.choice(source_vars))
        existential[0] += 1
        return Variable(f"z{existential[0]}")

    target_pattern = path_pattern(target_dtd, target_path, target_term)
    dependency = STD(target_pattern, source_pattern)
    spec = {"source": str(source_pattern), "target": str(target_pattern)}
    return GeneratedSTD(seed, dependency, spec)


def generate_stds(source_dtd: DTD, target_dtd: DTD, count: int, seed: int,
                  **knobs) -> List[GeneratedSTD]:
    """``count`` independent STDs with seeds derived from ``seed``."""
    rng = random.Random(("stds", seed, count).__repr__())
    return [generate_std(source_dtd, target_dtd, rng.randrange(2 ** 31),
                         **knobs)
            for _ in range(count)]


