"""ScenarioForge: seeded random generators for data-exchange artifacts.

Every generator is a pure function of its seed and knobs and returns an
artifact bundling the built object with a plain-data ``spec`` — the
``(seed, spec)`` pair reproduces the artifact exactly, which is what the
property-test harness (:mod:`tests.test_properties_generated`), the
benchmark's ``--generated`` mode and :mod:`repro.workloads.generated` rely
on.

* :func:`generate_dtd` — DTDs (nested-relational / general / non-univocal);
* :func:`generate_tree` / :func:`generate_trees` — conforming source trees
  of tunable depth and branching;
* :func:`generate_std` / :func:`generate_stds` — fully-specified STDs over a
  source/target DTD pair;
* :func:`generate_query` / :func:`generate_queries` — CTQ//,∪ queries
  against a target DTD;
* :func:`generate_scenario` / :func:`scenario_batch` — full engine workloads
  (setting + trees + queries).
"""

from .dtds import DTD_PROFILES, GeneratedDTD, generate_dtd
from .queries import (GeneratedQuery, QUERY_KINDS, generate_queries,
                      generate_query)
from .scenarios import (SCENARIO_PROFILES, Scenario, generate_scenario,
                        scenario_batch)
from .stds import GeneratedSTD, generate_std, generate_stds
from .trees import (GeneratedTree, GenerationError, generate_tree,
                    generate_trees)

__all__ = [
    "DTD_PROFILES", "GeneratedDTD", "generate_dtd",
    "GeneratedTree", "GenerationError", "generate_tree", "generate_trees",
    "GeneratedSTD", "generate_std", "generate_stds",
    "GeneratedQuery", "QUERY_KINDS", "generate_query", "generate_queries",
    "Scenario", "SCENARIO_PROFILES", "generate_scenario", "scenario_batch",
]
