"""Shared helpers for pattern-producing generators.

Both the STD generator and the query generator build linear tree patterns
along a random root-down path of a DTD graph; the walk and the pattern
construction live here so the two generators can never drift apart.
"""

from __future__ import annotations

import random
from typing import Callable, List, Sequence

from ..patterns.formula import NodePattern, Term, node
from ..xmlmodel.dtd import DTD

__all__ = ["random_path", "path_pattern"]


def random_path(dtd: DTD, rng: random.Random, max_path: int,
                stop_probability: float) -> List[str]:
    """A root-down label path through ``G(D)`` of length ≤ ``max_path``.

    At every step the walk stops early with ``stop_probability`` (or when
    the current element has no children in its content model).
    """
    path = [dtd.root]
    current = dtd.root
    for _ in range(max_path - 1):
        choices = sorted(dtd.content_model(current).alphabet())
        if not choices or rng.random() < stop_probability:
            break
        current = rng.choice(choices)
        path.append(current)
    return path


def path_pattern(dtd: DTD, path: Sequence[str],
                 term_for: Callable[[str], Term]) -> NodePattern:
    """Build the linear pattern ``path[0][path[1][…]]``, binding every DTD
    attribute along the path to the term ``term_for`` chooses for it."""
    pattern = None
    for label in reversed(path):
        attrs = {name: term_for(name)
                 for name in sorted(dtd.attributes_of(label))}
        children = [pattern] if pattern is not None else []
        pattern = node(label, attrs, *children)
    return pattern
