"""Seeded random DTD generation.

Every generator in :mod:`repro.generators` follows the same contract: it is a
pure function of its ``seed`` (and explicit size knobs) and returns an
artifact carrying both the built object and a ``spec`` — a plain-data
description from which the object can be rebuilt exactly.  The ``spec`` is
what goes into bug reports and benchmark logs: ``(seed, spec)`` pins the
scenario down across machines and sessions.

DTD profiles
------------

``"nested_relational"``
    Rules of the shape ``ℓ → l̃_1 … l̃_m`` over pairwise-distinct symbols with
    quantifiers in ``{1, ?, +, *}`` (the Clio class of Theorem 4.5).  Always
    non-recursive, always univocal.
``"general"``
    Concatenations mixing quantified single symbols with small union groups
    such as ``(a|b)`` and ``(a|b)*``.  Still non-recursive and satisfiable by
    construction, but outside the nested-relational class.
``"non_univocal"``
    Like ``"general"`` but with at least one duplicated factor (for example
    ``a a``), which pushes ``c(r)`` above 1 and breaks univocality
    (Definition 6.9) — the class where the chase's merge step is undefined.

Element types are generated in levels (an element may only mention
strictly-later elements in its content model), so every generated DTD is
non-recursive and ``SAT(D)`` is never empty.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..xmlmodel.dtd import DTD

__all__ = ["GeneratedDTD", "generate_dtd", "DTD_PROFILES"]

DTD_PROFILES = ("nested_relational", "general", "non_univocal")

#: Attribute names are drawn from a small shared pool so that independently
#: generated patterns and queries can talk about the same attributes.
ATTRIBUTE_POOL = ("id", "name", "val", "kind")

_QUANTIFIERS = ("", "?", "+", "*")


@dataclass(frozen=True)
class GeneratedDTD:
    """A reproducible DTD artifact: the object plus its ``(seed, spec)``."""

    seed: int
    profile: str
    dtd: DTD
    #: Plain-data description: ``{"root": ..., "rules": {elem: model_str},
    #: "attributes": {elem: [names]}}``.  ``generate_dtd`` with the same seed
    #: and knobs rebuilds exactly this spec.
    spec: Dict[str, object]


def generate_dtd(seed: int, profile: str = "nested_relational",
                 n_elements: int = 6, max_children: int = 3,
                 max_attrs: int = 2, prefix: str = "e") -> GeneratedDTD:
    """Generate a random DTD of the given profile.

    ``n_elements`` bounds the universe of element types; ``max_children``
    bounds how many distinct child types one rule mentions; ``max_attrs``
    bounds attributes per element (drawn from :data:`ATTRIBUTE_POOL`).
    """
    if profile not in DTD_PROFILES:
        raise ValueError(f"unknown DTD profile {profile!r}; "
                         f"expected one of {DTD_PROFILES}")
    if n_elements < 2:
        raise ValueError("need at least 2 element types")
    rng = random.Random(("dtd", profile, seed, n_elements, max_children,
                         max_attrs, prefix).__repr__())
    names = [f"{prefix}{i}" for i in range(n_elements)]
    rules: Dict[str, str] = {}
    attributes: Dict[str, List[str]] = {}

    duplicated = False
    for index, name in enumerate(names):
        later = names[index + 1:]
        if not later:
            rules[name] = ""
        else:
            want = rng.randint(0 if index else 1, min(max_children, len(later)))
            children = rng.sample(later, k=want)
            if profile == "nested_relational":
                rules[name] = " ".join(
                    f"{child}{rng.choice(_QUANTIFIERS)}" for child in children)
            else:
                rules[name] = _general_rule(rng, children)
        # The root keeps no attributes (the paper's convention); everyone
        # else gets a small draw from the shared pool.
        if index == 0:
            attributes[name] = []
        else:
            count = rng.randint(0, max_attrs)
            attributes[name] = sorted(rng.sample(ATTRIBUTE_POOL,
                                                 k=min(count, len(ATTRIBUTE_POOL))))

    if profile == "non_univocal":
        # Force a duplicated factor into the rule of the first element that
        # has at least one child: ``... a a`` gives c(rule) ≥ 2.
        for name in names:
            first = rules[name].split()
            if first:
                symbol = first[0].rstrip("?+*")
                rules[name] = " ".join([symbol, symbol] + first[1:])
                duplicated = True
                break
        if not duplicated:  # pragma: no cover - n_elements >= 2 prevents this
            raise AssertionError("no rule available to de-univocalise")

    dtd = DTD(names[0], rules, attributes)
    spec = {
        "root": names[0],
        "rules": dict(rules),
        "attributes": {k: list(v) for k, v in attributes.items()},
    }
    return GeneratedDTD(seed, profile, dtd, spec)


def _general_rule(rng: random.Random, children: Sequence[str]) -> str:
    """A concatenation of quantified symbols and small union groups."""
    remaining = list(children)
    parts: List[str] = []
    while remaining:
        if len(remaining) >= 2 and rng.random() < 0.4:
            left, right = remaining.pop(0), remaining.pop(0)
            group = f"({left}|{right})"
            parts.append(group + rng.choice(("", "*")))
        else:
            parts.append(remaining.pop(0) + rng.choice(_QUANTIFIERS))
    return " ".join(parts)
