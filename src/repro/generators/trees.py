"""Seeded random generation of DTD-conforming XML trees.

Words are sampled directly from the content-model regular expression (choose
a branch of every union, a repetition count for every star/plus), so every
generated tree conforms to the DTD by construction — ``T ⊨ D`` in the ordered
sense.  Attribute values are constants drawn from a small pool, which makes
value collisions (and therefore chase merges, attribute clashes and
interesting certain-answer joins) likely instead of vanishingly rare.

Depth is bounded: below ``max_depth`` the sampler picks *minimal* words
(every star repeats zero times, every union takes its cheapest branch), so
generation terminates even on recursive DTDs whose minimal trees are finite.
A hard guard raises :class:`GenerationError` when a DTD forces unbounded
expansion (for example a rule whose every word mentions the element itself).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..regexlang.ast import (Concat, Empty, Epsilon, Regex, Star, Symbol,
                             Union)
from ..xmlmodel.dtd import DTD
from ..xmlmodel.tree import XMLTree

__all__ = ["GenerationError", "GeneratedTree", "generate_tree",
           "generate_trees"]

#: Extra levels the sampler may use past ``max_depth`` while draining
#: mandatory (non-starred) structure of a recursive DTD.
_DEPTH_SLACK = 16


class GenerationError(RuntimeError):
    """Raised when no conforming artifact can be generated (empty content
    model, or a recursive DTD forcing unbounded trees)."""


@dataclass(frozen=True)
class GeneratedTree:
    """A reproducible conforming tree: the object plus its ``(seed, spec)``."""

    seed: int
    tree: XMLTree
    #: ``{"max_depth": ..., "max_repeat": ..., "value_pool": ...,
    #:   "fingerprint": ...}`` — the knobs plus the content fingerprint of the
    #: produced tree (see :meth:`repro.XMLTree.fingerprint`).
    spec: Dict[str, object]


def generate_tree(dtd: DTD, seed: int, max_depth: int = 6,
                  max_repeat: int = 3, value_pool: int = 8,
                  max_nodes: Optional[int] = None) -> GeneratedTree:
    """Sample one tree with ``T ⊨ D``.

    ``max_repeat`` bounds the repetition count sampled for every ``*``/``+``
    (the branching knob); ``value_pool`` is the number of distinct attribute
    constants (smaller pools force more value collisions).  ``max_nodes``
    aborts combinatorially explosive samples early with
    :class:`GenerationError` (nested stars can expand to ``max_repeat^depth``
    nodes) instead of materialising them; it does not affect the sampling
    stream, so two same-seed calls agree wherever both stay under budget.
    """
    rng = random.Random(("tree", seed, max_depth, max_repeat,
                         value_pool).__repr__())
    tree = XMLTree(dtd.root, ordered=True)
    _fill_attributes(dtd, tree, tree.root, rng, value_pool)
    budget = [1]  # the root is already materialised
    _expand(dtd, tree, tree.root, rng, depth=0, max_depth=max_depth,
            max_repeat=max_repeat, value_pool=value_pool,
            max_nodes=max_nodes, budget=budget)
    spec = {"max_depth": max_depth, "max_repeat": max_repeat,
            "value_pool": value_pool, "fingerprint": tree.fingerprint()}
    return GeneratedTree(seed, tree, spec)


def generate_trees(dtd: DTD, count: int, seed: int, **knobs) -> List[GeneratedTree]:
    """``count`` independent trees with seeds derived from ``seed``."""
    rng = random.Random(("trees", seed, count).__repr__())
    return [generate_tree(dtd, rng.randrange(2 ** 31), **knobs)
            for _ in range(count)]


# --------------------------------------------------------------------- #
# Internals
# --------------------------------------------------------------------- #

def _expand(dtd: DTD, tree: XMLTree, node: int, rng: random.Random,
            depth: int, max_depth: int, max_repeat: int, value_pool: int,
            max_nodes: Optional[int], budget: List[int]) -> None:
    if depth > max_depth + _DEPTH_SLACK:
        raise GenerationError(
            f"tree generation exceeded depth {max_depth + _DEPTH_SLACK}; "
            "the DTD appears to force unbounded trees")
    label = tree.label(node)
    minimal = depth >= max_depth
    word = _sample_word(dtd.content_model(label), rng,
                        0 if minimal else max_repeat)
    for symbol in word:
        budget[0] += 1
        if max_nodes is not None and budget[0] > max_nodes:
            raise GenerationError(
                f"tree generation exceeded max_nodes={max_nodes}; "
                "this (seed, DTD) pair expands combinatorially")
        child = tree.add_child(node, symbol)
        _fill_attributes(dtd, tree, child, rng, value_pool)
        _expand(dtd, tree, child, rng, depth + 1, max_depth, max_repeat,
                value_pool, max_nodes, budget)


def _fill_attributes(dtd: DTD, tree: XMLTree, node: int, rng: random.Random,
                     value_pool: int) -> None:
    for name in sorted(dtd.attributes_of(tree.label(node))):
        tree.set_attribute(node, name, f"v{rng.randrange(value_pool)}")


def _sample_word(model: Regex, rng: random.Random, max_repeat: int) -> List[str]:
    """A uniformly-seeded member of ``L(model)`` (repetitions capped)."""
    if isinstance(model, Symbol):
        return [model.name]
    if isinstance(model, Epsilon):
        return []
    if isinstance(model, Empty):
        raise GenerationError("content model has an empty language (∅)")
    if isinstance(model, Concat):
        return (_sample_word(model.left, rng, max_repeat)
                + _sample_word(model.right, rng, max_repeat))
    if isinstance(model, Union):
        if max_repeat == 0:
            # Minimal mode: take the branch with the shorter minimal word.
            left, right = _min_length(model.left), _min_length(model.right)
            branch = model.left if left <= right else model.right
            return _sample_word(branch, rng, max_repeat)
        return _sample_word(rng.choice((model.left, model.right)), rng,
                            max_repeat)
    if isinstance(model, Star):
        repeats = rng.randint(0, max_repeat)
        word: List[str] = []
        for _ in range(repeats):
            word.extend(_sample_word(model.inner, rng, max_repeat))
        return word
    raise TypeError(f"unknown regex node: {model!r}")


def _min_length(model: Regex) -> int:
    """Length of the shortest word of ``L(model)`` (∞ for ∅)."""
    if isinstance(model, Symbol):
        return 1
    if isinstance(model, (Epsilon, Star)):
        return 0
    if isinstance(model, Empty):
        return 10 ** 9
    if isinstance(model, Concat):
        return _min_length(model.left) + _min_length(model.right)
    if isinstance(model, Union):
        return min(_min_length(model.left), _min_length(model.right))
    raise TypeError(f"unknown regex node: {model!r}")
