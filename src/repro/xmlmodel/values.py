"""Attribute-value domain: constants and nulls.

The paper (Section 3.2) partitions the domain ``Str`` of attribute values into
two countably infinite sets:

* ``Const`` -- values that may occur in *source* trees,
* ``Var``   -- *nulls*, invented while populating target trees.

We model constants as ordinary Python strings and nulls as instances of
:class:`Null`.  Nulls compare equal only to themselves (labelled-null
semantics), which is exactly what the chase and the certain-answer machinery
require: two distinct nulls are never known to be equal, but a null may be
reused to force equality of unknown values (e.g. ``⊥1`` appearing twice in
Figure 2 of the paper).
"""

from __future__ import annotations

import itertools
from typing import Union

__all__ = ["Null", "Value", "NullFactory", "is_null", "is_constant",
           "fresh_null", "value_key"]


class Null:
    """A labelled null value (an element of ``Var`` in the paper).

    Each null has an integer identity.  Two nulls are equal iff they have the
    same identity, mirroring the paper's treatment of ``⊥1``, ``⊥2``, ...
    """

    __slots__ = ("ident",)

    def __init__(self, ident: int) -> None:
        self.ident = ident

    def __repr__(self) -> str:
        return f"⊥{self.ident}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Null) and other.ident == self.ident

    def __hash__(self) -> int:
        return hash(("Null", self.ident))


#: An attribute value: either a constant (plain string) or a null.
Value = Union[str, Null]

_GLOBAL_COUNTER = itertools.count(1)


class NullFactory:
    """Produces fresh, pairwise-distinct nulls.

    A factory is handed to the chase / canonical-solution construction so that
    a single exchange run draws nulls from one namespace and remains
    deterministic and reproducible.
    """

    def __init__(self, start: int = 1) -> None:
        self._counter = itertools.count(start)

    def fresh(self) -> Null:
        """Return a null value never returned before by this factory."""
        return Null(next(self._counter))


def fresh_null() -> Null:
    """Return a fresh null from the module-global namespace."""
    return Null(next(_GLOBAL_COUNTER))


def is_null(value: Value) -> bool:
    """True iff ``value`` is a null (element of ``Var``)."""
    return isinstance(value, Null)


def is_constant(value: Value) -> bool:
    """True iff ``value`` is a constant (element of ``Const``)."""
    return isinstance(value, str)


def value_key(value: Value) -> tuple:
    """A canonical, *type-aware* identity key for an attribute value.

    Deduplication and fingerprinting must never alias two distinct values.
    Keying on ``repr(value)`` is unsound for that: two values of different
    types can render identically while comparing unequal.  The returned key
    is a pair ``(type tag, canonical payload)`` of strings — hashable,
    totally ordered (so unordered structural keys can sort child keys) and
    stable across processes (no ``hash()`` involved), with distinct tags per
    value type so cross-type collisions are impossible.
    """
    if isinstance(value, str):
        return ("s", value)
    if isinstance(value, Null):
        return ("n", str(value.ident))
    # Future value types: namespaced by the exact class, with repr as the
    # payload (injectivity within one type is that type's contract).
    cls = type(value)
    return (f"o:{cls.__module__}.{cls.__qualname__}", repr(value))
