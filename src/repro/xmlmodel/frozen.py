"""Immutable, label-interned tree snapshots: the plan evaluator's input.

A :class:`FrozenTree` is a read-only snapshot of an
:class:`~repro.xmlmodel.tree.XMLTree` laid out as flat integer arrays:

* nodes are renumbered ``0 .. n-1`` in **breadth-first order**, so the
  children of every node occupy one contiguous span — ``children(v)`` is a
  ``range``, not an allocation;
* labels and attribute names are **interned** to small integers per tree;
  a pattern's label test compiles to one ``int`` comparison and a missing
  label is detected once at bind time instead of per node;
* ``nodes_by_label[label_id]`` indexes all nodes carrying a label (built
  lazily on first use — the hook for candidate-driven matching of rooted
  patterns, a ROADMAP follow-up);
* attribute values live in per-attribute tables ``{node: value}`` keyed by
  the interned attribute id — one dict lookup per attribute test;
* ``post_order`` is a precomputed bottom-up evaluation order (every node
  after all of its descendants), which is what the compiled recurrence
  evaluator in :mod:`repro.patterns.plan` iterates;
* :meth:`pre_post` derives (and caches) the **pre/post interval plane** of
  the XPath-accelerator encoding — the single source of truth shared by
  the storage record encoder (:mod:`repro.storage.encoding`) and the
  structural-join evaluator; :meth:`depths` and :meth:`subtree_sizes` are
  the companion columns the join evaluator ranges over;
* :meth:`fingerprint` is computed **iteratively** and cached, and equals
  ``XMLTree.fingerprint()`` of the snapshotted tree — frozen and mutable
  views of the same document share cache identity.

Freezing pays one O(n) pass; everything afterwards is allocation-free
reads.  The chase output is frozen once per request and evaluated many
times (once per plan node), which is where the layout earns its keep.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from .values import Value, value_key

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .tree import XMLTree

__all__ = ["FrozenTree", "compute_pre_post"]


def compute_pre_post(child_start: Sequence[int], child_end: Sequence[int],
                     n: int) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """Pre/post ranks of every BFS position (iterative DFS, O(n)).

    ``pre[v]`` / ``post[v]`` are the document-order and bottom-up ranks of
    node ``v``; ``v`` is an ancestor of ``w`` iff ``pre[v] < pre[w]`` and
    ``post[v] > post[w]`` (the XPath-accelerator plane).  Leaves carry
    ``child_start == child_end == 0`` in the frozen layout, which
    conveniently yields an empty child range.
    """
    pre = [0] * n
    post = [0] * n
    pre_rank = 0
    post_rank = 0
    stack: List[int] = [0] if n else []
    # Encoding: positive entry = enter node, ~entry = leave node.
    while stack:
        node = stack.pop()
        if node < 0:
            post[~node] = post_rank
            post_rank += 1
            continue
        pre[node] = pre_rank
        pre_rank += 1
        stack.append(~node)
        for child in range(child_end[node] - 1, child_start[node] - 1, -1):
            stack.append(child)
    return tuple(pre), tuple(post)


class FrozenTree:
    """An immutable array-backed snapshot of an XML tree.

    Build one with :meth:`XMLTree.freeze` (or :meth:`from_tree`).  All
    fields are read-only by convention; nothing in the pipeline mutates a
    frozen tree, and the fingerprint cache relies on that.
    """

    __slots__ = (
        "ordered", "n",
        "labels", "label_names", "label_ids",
        "parents", "child_start", "child_end",
        "post_order",
        "attr_names", "attr_ids", "attr_tables",
        "orig_ids",
        "_by_label", "_fingerprint",
        "_pre_post", "_depths", "_sizes",
        # Weak-referenceable: compiled pattern plans key their per-tree
        # bind caches on the snapshot without pinning it alive.
        "__weakref__",
    )

    def __init__(self, *, ordered: bool, labels: Tuple[int, ...],
                 label_names: Tuple[str, ...], label_ids: Dict[str, int],
                 parents: Tuple[int, ...], child_start: Tuple[int, ...],
                 child_end: Tuple[int, ...], post_order: Tuple[int, ...],
                 attr_names: Tuple[str, ...], attr_ids: Dict[str, int],
                 attr_tables: Tuple[Dict[int, Value], ...],
                 orig_ids: Tuple[int, ...]) -> None:
        self.ordered = ordered
        self.n = len(labels)
        self.labels = labels
        self.label_names = label_names
        self.label_ids = label_ids
        self.parents = parents
        self.child_start = child_start
        self.child_end = child_end
        self.post_order = post_order
        self.attr_names = attr_names
        self.attr_ids = attr_ids
        self.attr_tables = attr_tables
        self.orig_ids = orig_ids
        self._by_label: Optional[Tuple[Tuple[int, ...], ...]] = None
        self._fingerprint: Optional[str] = None
        self._pre_post: Optional[Tuple[Tuple[int, ...],
                                       Tuple[int, ...]]] = None
        self._depths: Optional[Tuple[int, ...]] = None
        self._sizes: Optional[Tuple[int, ...]] = None

    @property
    def nodes_by_label(self) -> Tuple[Tuple[int, ...], ...]:
        """``nodes_by_label[label_id]``: every node position carrying the
        label, ascending.  Built lazily on first use and cached — the
        snapshot is immutable.  This is the candidate seed of the
        structural-join evaluator in :mod:`repro.patterns.plan` (a node op
        with a selective label scans these positions instead of every
        node)."""
        if self._by_label is None:
            index: List[List[int]] = [[] for _ in self.label_names]
            for pos, lid in enumerate(self.labels):
                index[lid].append(pos)
            self._by_label = tuple(tuple(ns) for ns in index)
        return self._by_label

    def pre_post(self) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """The cached ``(pre, post)`` interval columns of this snapshot.

        Computed once per tree (:func:`compute_pre_post`) and shared by
        every consumer — the structural-join evaluator ranges over them per
        query, and the storage encoder persists the very same columns, so
        freezing + ingesting a document never derives the plane twice.  The
        store's decoder seeds this cache from the record sections.
        """
        if self._pre_post is None:
            self._pre_post = compute_pre_post(self.child_start,
                                              self.child_end, self.n)
        return self._pre_post

    def depths(self) -> Tuple[int, ...]:
        """Root distance of every position (cached; one forward pass —
        parents always carry smaller BFS ids than their children)."""
        if self._depths is None:
            depths = [0] * self.n
            parents = self.parents
            for pos in range(1, self.n):
                depths[pos] = depths[parents[pos]] + 1
            self._depths = tuple(depths)
        return self._depths

    def subtree_sizes(self) -> Tuple[int, ...]:
        """Inclusive subtree node counts (cached; one backward pass).

        With the pre ranks of :meth:`pre_post`, the descendants of ``v``
        are exactly the positions whose pre rank falls in the half-open
        interval ``(pre[v], pre[v] + size[v])`` — the right bound of every
        staircase-join range."""
        if self._sizes is None:
            sizes = [1] * self.n
            parents = self.parents
            for pos in range(self.n - 1, 0, -1):
                sizes[parents[pos]] += sizes[pos]
            self._sizes = tuple(sizes)
        return self._sizes

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_tree(cls, tree: "XMLTree") -> "FrozenTree":
        """Snapshot ``tree`` (one breadth-first pass, O(n)).

        Breadth-first renumbering makes every position arithmetic: a node's
        children are enqueued consecutively, so their span is
        ``[len(queue), len(queue) + k)`` the moment the parent is visited —
        no id→position table is ever needed.
        """
        label_ids: Dict[str, int] = {}
        label_names: List[str] = []
        attr_ids: Dict[str, int] = {}
        attr_names: List[str] = []
        attr_tables: List[Dict[int, Value]] = []

        labels: List[int] = []
        parents: List[int] = [-1]
        child_start: List[int] = []
        child_end: List[int] = []
        orig_ids: List[int] = []

        node_of = tree.node
        queue = [node_of(tree.root)]
        pos = 0
        while pos < len(queue):
            node = queue[pos]
            lid = label_ids.get(node.label)
            if lid is None:
                lid = len(label_names)
                label_ids[node.label] = lid
                label_names.append(node.label)
            labels.append(lid)
            kids = node.children
            first = len(queue)
            child_start.append(first if kids else 0)
            child_end.append(first + len(kids) if kids else 0)
            for child in kids:
                queue.append(node_of(child))
                parents.append(pos)
            orig_ids.append(node.ident)
            for name, value in node._attributes.items():
                aid = attr_ids.get(name)
                if aid is None:
                    aid = len(attr_names)
                    attr_ids[name] = aid
                    attr_names.append(name)
                    attr_tables.append({})
                attr_tables[aid][pos] = value
            pos += 1

        # Children always carry larger BFS ids than their parent, so walking
        # ids descending visits every node after all of its descendants — a
        # valid bottom-up (post-) order without a DFS pass.
        post_order = tuple(range(len(queue) - 1, -1, -1))

        return cls(
            ordered=tree.ordered,
            labels=tuple(labels),
            label_names=tuple(label_names),
            label_ids=label_ids,
            parents=tuple(parents),
            child_start=tuple(child_start),
            child_end=tuple(child_end),
            post_order=post_order,
            attr_names=tuple(attr_names),
            attr_ids=attr_ids,
            attr_tables=tuple(attr_tables),
            orig_ids=tuple(orig_ids),
        )

    # ------------------------------------------------------------------ #
    # Accessors (mirroring the XMLTree read API on positions)
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self.n

    def label(self, pos: int) -> str:
        """The label string of the node at ``pos``."""
        return self.label_names[self.labels[pos]]

    def label_id(self, label: str) -> int:
        """The interned id of ``label``, or ``-1`` when no node carries it
        (a pattern bound against this tree then fails the label test once,
        at bind time)."""
        return self.label_ids.get(label, -1)

    def children(self, pos: int) -> range:
        """Child positions of ``pos`` in sibling order (a ``range`` — the
        BFS numbering keeps every sibling span contiguous)."""
        return range(self.child_start[pos], self.child_end[pos])

    def parent(self, pos: int) -> Optional[int]:
        parent = self.parents[pos]
        return None if parent < 0 else parent

    def attribute(self, pos: int, name: str) -> Optional[Value]:
        """``ρ_@name(v)`` or ``None`` (one interning + one dict lookup)."""
        aid = self.attr_ids.get(name)
        if aid is None:
            return None
        return self.attr_tables[aid].get(pos)

    def attributes(self, pos: int) -> Dict[str, Value]:
        """The attribute map of the node at ``pos`` (reconstructed — for
        inspection and tests, not the hot path)."""
        result: Dict[str, Value] = {}
        for aid, table in enumerate(self.attr_tables):
            value = table.get(pos)
            if value is not None:
                result[self.attr_names[aid]] = value
        return result

    # ------------------------------------------------------------------ #
    # Thawing
    # ------------------------------------------------------------------ #

    def thaw(self) -> "XMLTree":
        """Rebuild a mutable :class:`XMLTree` equal to the snapshotted
        document (fresh node idents, identical structure, labels,
        attributes and fingerprint).

        This is the load path of the persistent corpus store: the chase
        consumes ``XMLTree`` sources, so a fingerprint-addressed request
        thaws the stored snapshot once and caches the result.  When this
        snapshot's fingerprint is already known it is pre-seeded into the
        thawed tree's cache — addressing a stored document never re-hashes
        it.  BFS positions map onto idents in index order: every parent
        precedes its children and sibling spans are contiguous, so one
        forward pass re-creates the exact sibling order.
        """
        from .tree import XMLTree
        tree = XMLTree(self.label(0), ordered=self.ordered)
        idents: List[int] = [tree.root]
        for pos in range(1, self.n):
            idents.append(tree.add_child(idents[self.parents[pos]],
                                         self.label(pos)))
        for aid, table in enumerate(self.attr_tables):
            name = self.attr_names[aid]
            for pos, value in table.items():
                tree.set_attribute(idents[pos], name, value)
        if self._fingerprint is not None:
            tree._fp_cache[self.ordered] = self._fingerprint
        return tree

    # ------------------------------------------------------------------ #
    # Fingerprint
    # ------------------------------------------------------------------ #

    def _fold_bottom_up(self, combine):
        """Bottom-up fold over the frozen arrays:
        ``combine(label, attrs_key, child_results)`` runs once per node in
        ``post_order`` (children first), with the same canonical attrs key
        :func:`~repro.xmlmodel.tree._attrs_key` produces for mutable trees.
        The single traversal behind :meth:`structural_key` and
        :meth:`fingerprint`."""
        attrs_of: Dict[int, List[Tuple[str, tuple]]] = {}
        for aid, table in enumerate(self.attr_tables):
            name = self.attr_names[aid]
            for pos, value in table.items():
                attrs_of.setdefault(pos, []).append((name, value_key(value)))
        results: List[object] = [None] * self.n
        for pos in self.post_order:  # children before parents
            child_results = [results[c] for c in self.children(pos)]
            attrs = tuple(sorted(attrs_of.get(pos, ())))
            results[pos] = combine(self.label(pos), attrs, child_results)
        return results[0]

    def structural_key(self) -> tuple:
        """The same canonical key :meth:`XMLTree.structural_key` computes,
        rebuilt iteratively from the frozen arrays."""
        def combine(label: str, attrs: tuple, child_keys: list) -> tuple:
            if not self.ordered:
                child_keys.sort()
            return (label, attrs, tuple(child_keys))

        return self._fold_bottom_up(combine)

    def fingerprint(self) -> str:
        """Identical to the source :meth:`XMLTree.fingerprint` (hex SHA-256
        of the root's Merkle subtree digest plus the ordered flag), computed
        iteratively from the frozen arrays and cached — a frozen tree is
        immutable, so the cache never invalidates.  Frozen and mutable
        views of the same document share cache identity."""
        if self._fingerprint is None:
            from .tree import _node_digest
            root_digest = self._fold_bottom_up(
                lambda label, attrs, child_digests: _node_digest(
                    label, attrs, child_digests, self.ordered))
            hasher = hashlib.sha256()
            hasher.update(b"ordered" if self.ordered else b"unordered")
            hasher.update(root_digest)
            self._fingerprint = hasher.hexdigest()
        return self._fingerprint

    def __repr__(self) -> str:
        kind = "ordered" if self.ordered else "unordered"
        return (f"<FrozenTree {kind} root={self.label(0)!r} nodes={self.n} "
                f"labels={len(self.label_names)}>")
