"""DTDs (Document Type Definitions) over element types and attributes.

Following Section 2 of the paper, a DTD over ``(E, A)`` is a triple
``(P, R, r)`` where ``P`` maps element types to regular expressions over
``E``, ``R`` maps element types to sets of attribute names, and ``r`` is the
root element type (which cannot occur in content models and has no
attributes — we check but do not hard-require the latter two conditions, since
several constructions in the paper's reductions use the root inside patterns).

The module implements:

* conformance of ordered trees (``T ⊨ D``) and of unordered trees
  (``T |≈ D``, Section 5.2),
* emptiness of ``SAT(D)`` and DTD *consistency* (every element type occurs in
  some conforming tree), together with the polynomial trimming construction of
  Lemma 2.2,
* the DTD graph ``G(D)``, recursiveness, reachability restriction ``D_ℓ``,
* detection of *nested-relational* DTDs and the ``D°`` / ``D*`` transforms
  used by Theorem 4.5,
* detection of *simple* DTDs (all content models simple) and univocal DTDs
  (all content models univocal, Definition 6.9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (TYPE_CHECKING, Dict, Iterable, List, Mapping, Optional,
                    Set, Tuple)

from ..regexlang.ast import (Concat, Empty, Epsilon, Regex, Star, Symbol, Union,
                             concat, empty, epsilon, star, sym, union)
from ..regexlang.nfa import NFA, regex_to_nfa
from ..regexlang.parse import parse_regex
from ..regexlang.parikh import SemilinearSet, parikh_vector, semilinear_of
from ..regexlang.univocal import RegexAnalysis, analyse, is_simple_regex
from .tree import XMLTree

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from .frozen import FrozenTree

__all__ = ["DTD", "parse_dtd", "nested_relational_factors"]


@dataclass
class _RuleCache:
    nfa: NFA
    semilinear: SemilinearSet
    analysis: RegexAnalysis


class DTD:
    """A DTD ``(P, R, r)``.

    Parameters
    ----------
    root:
        The root element type.
    rules:
        Mapping element type -> content model.  Values may be
        :class:`~repro.regexlang.ast.Regex` instances or strings parsed by
        :func:`~repro.regexlang.parse.parse_regex`.  Element types mentioned
        in content models but absent from the mapping default to ``ε``.
    attributes:
        Mapping element type -> iterable of attribute names (without ``@``).
    """

    def __init__(self, root: str,
                 rules: Mapping[str, object],
                 attributes: Optional[Mapping[str, Iterable[str]]] = None) -> None:
        self.root = root
        self.rules: Dict[str, Regex] = {}
        for element, model in rules.items():
            self.rules[element] = model if isinstance(model, Regex) else parse_regex(str(model))
        self.attributes: Dict[str, Set[str]] = {}
        for element, attrs in (attributes or {}).items():
            self.attributes[element] = set(attrs)
        # Close the element-type universe over everything mentioned anywhere.
        for element in list(self.rules):
            for mentioned in self.rules[element].alphabet():
                self.rules.setdefault(mentioned, epsilon())
        self.rules.setdefault(root, epsilon())
        for element in self.rules:
            self.attributes.setdefault(element, set())
        self._cache: Dict[str, _RuleCache] = {}
        self._cache_hits = 0
        self._cache_misses = 0

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #

    @property
    def element_types(self) -> Set[str]:
        """The finite set ``E`` of element types of the DTD."""
        return set(self.rules)

    def content_model(self, element: str) -> Regex:
        """``P(ℓ)`` (defaults to ``ε`` for element types without a rule)."""
        return self.rules.get(element, epsilon())

    def attributes_of(self, element: str) -> Set[str]:
        """``R(ℓ)``."""
        return self.attributes.get(element, set())

    def size(self) -> int:
        """``‖D‖``: total size of content models plus attribute lists."""
        total = 0
        for element, model in self.rules.items():
            total += 1 + model.norm() + len(self.attributes_of(element))
        return total

    def _rule_cache(self, element: str) -> _RuleCache:
        cached = self._cache.get(element)
        if cached is None:
            # repro-lint: disable=RL004 -- plain counts by design: xmlmodel
            # cannot import engine.stats (circular); the compiled setting
            # re-publishes these via CacheStats.set_counts
            self._cache_misses += 1
            model = self.content_model(element)
            cached = _RuleCache(
                nfa=regex_to_nfa(model),
                semilinear=semilinear_of(model),
                analysis=analyse(model),
            )
            self._cache[element] = cached
        else:
            # repro-lint: disable=RL004 -- plain counts by design, see above
            self._cache_hits += 1
        return cached

    def rule_analysis(self, element: str) -> RegexAnalysis:
        """The cached :class:`RegexAnalysis` of ``P(ℓ)`` (used by the chase)."""
        return self._rule_cache(element).analysis

    def precompile_rules(self) -> None:
        """Force the NFA / semilinear / univocality analysis of every content
        model into the rule cache (compile-once entry point for the engine)."""
        for element in self.rules:
            self._rule_cache(element)

    def rule_cache_info(self) -> Dict[str, int]:
        """Hit/miss/entry counters of the per-element rule cache.  A *miss*
        is a fresh regex→NFA compilation; after :meth:`precompile_rules` the
        miss counter should never move again for this DTD instance."""
        return {"hits": self._cache_hits, "misses": self._cache_misses,
                "entries": len(self._cache)}

    # ------------------------------------------------------------------ #
    # Conformance (ordered and unordered)
    # ------------------------------------------------------------------ #

    def conformance_violations(self, tree: XMLTree,
                               ordered: Optional[bool] = None) -> List[str]:
        """Return a list of human-readable violations of ``T ⊨ D`` (ordered)
        or ``T |≈ D`` (unordered).  Empty list means the tree conforms."""
        if ordered is None:
            ordered = tree.ordered
        problems: List[str] = []
        if tree.label(tree.root) != self.root:
            problems.append(
                f"root is {tree.label(tree.root)!r}, expected {self.root!r}")
        for node in tree.nodes():
            label = tree.label(node)
            if label not in self.rules:
                problems.append(f"node {node}: unknown element type {label!r}")
                continue
            expected_attrs = self.attributes_of(label)
            actual_attrs = set(tree.attributes(node))
            if expected_attrs != actual_attrs:
                problems.append(
                    f"node {node} ({label}): attributes {sorted(actual_attrs)} "
                    f"do not match R({label}) = {sorted(expected_attrs)}")
            child_labels = tree.children_labels(node)
            cache = self._rule_cache(label)
            if ordered:
                if not cache.nfa.accepts(child_labels):
                    problems.append(
                        f"node {node} ({label}): children {child_labels} "
                        f"not in L({self.content_model(label)})")
            else:
                if not cache.semilinear.contains(parikh_vector(child_labels)):
                    problems.append(
                        f"node {node} ({label}): children {child_labels} "
                        f"not in π({self.content_model(label)})")
        return problems

    def conformance_violations_frozen(self, frozen: "FrozenTree",
                                      ordered: Optional[bool] = None) -> List[str]:
        """:meth:`conformance_violations` driven by a frozen snapshot.

        Same checks and message shapes (node ids are the source-tree
        idents), but the walk is columnar: nodes are visited label by
        label via ``nodes_by_label``, so every element type pays exactly
        one rule-cache lookup per call instead of one per node, and
        attribute presence comes from the per-attribute tables instead of
        per-node dict reconstruction.  Message *order* groups by label
        rather than by node id.  This is the chase's final conformance
        sweep: the repaired tree is frozen once and the snapshot rides on
        into query evaluation.
        """
        if ordered is None:
            ordered = frozen.ordered
        problems: List[str] = []
        if frozen.label(0) != self.root:
            problems.append(
                f"root is {frozen.label(0)!r}, expected {self.root!r}")
        attrs_of: Dict[int, Set[str]] = {}
        for aid, table in enumerate(frozen.attr_tables):
            name = frozen.attr_names[aid]
            for pos in table:
                attrs_of.setdefault(pos, set()).add(name)
        orig = frozen.orig_ids
        for lid, label in enumerate(frozen.label_names):
            positions = frozen.nodes_by_label[lid]
            if not positions:
                continue
            if label not in self.rules:
                problems.extend(
                    f"node {orig[pos]}: unknown element type {label!r}"
                    for pos in positions)
                continue
            expected_attrs = self.attributes_of(label)
            cache = self._rule_cache(label)
            model = self.content_model(label)
            for pos in positions:
                actual_attrs = attrs_of.get(pos, set())
                if expected_attrs != actual_attrs:
                    problems.append(
                        f"node {orig[pos]} ({label}): attributes "
                        f"{sorted(actual_attrs)} do not match "
                        f"R({label}) = {sorted(expected_attrs)}")
                child_labels = [frozen.label(c) for c in frozen.children(pos)]
                if ordered:
                    if not cache.nfa.accepts(child_labels):
                        problems.append(
                            f"node {orig[pos]} ({label}): children "
                            f"{child_labels} not in L({model})")
                else:
                    if not cache.semilinear.contains(parikh_vector(child_labels)):
                        problems.append(
                            f"node {orig[pos]} ({label}): children "
                            f"{child_labels} not in π({model})")
        return problems

    def conforms(self, tree: XMLTree, ordered: Optional[bool] = None) -> bool:
        """``T ⊨ D`` for ordered trees / ``T |≈ D`` for unordered trees."""
        return not self.conformance_violations(tree, ordered)

    def weakly_conforms(self, tree: XMLTree) -> bool:
        """Unordered conformance ``T |≈ D`` regardless of the tree's flag."""
        return self.conforms(tree, ordered=False)

    # ------------------------------------------------------------------ #
    # Satisfiability, consistency and trimming (Lemma 2.2)
    # ------------------------------------------------------------------ #

    def realizable_types(self) -> Set[str]:
        """Element types ``ℓ`` admitting a finite tree rooted at ``ℓ`` whose
        every node satisfies its content model."""
        realizable: Set[str] = set()
        changed = True
        while changed:
            changed = False
            for element in self.rules:
                if element in realizable:
                    continue
                nfa = self._rule_cache(element).nfa.restricted_to(realizable)
                if not nfa.is_empty():
                    realizable.add(element)
                    changed = True
        return realizable

    def is_satisfiable(self) -> bool:
        """``SAT(D) ≠ ∅``."""
        return self.root in self.realizable_types()

    def usable_types(self) -> Set[str]:
        """Element types occurring in at least one tree of ``SAT(D)``."""
        realizable = self.realizable_types()
        if self.root not in realizable:
            return set()
        usable = {self.root}
        frontier = [self.root]
        while frontier:
            element = frontier.pop()
            nfa = self._rule_cache(element).nfa.restricted_to(realizable)
            # A symbol is usable below ``element`` if it appears in some word
            # of the restricted language.
            for candidate in self.content_model(element).alphabet() & realizable:
                if candidate in usable:
                    continue
                if _symbol_occurs_in_language(nfa, candidate, realizable):
                    usable.add(candidate)
                    frontier.append(candidate)
        return usable

    def is_consistent(self) -> bool:
        """Every element type of the DTD occurs in some conforming tree."""
        return self.usable_types() == self.element_types and self.is_satisfiable()

    def trimmed(self) -> "DTD":
        """The consistent DTD ``D'`` of Lemma 2.2 with ``SAT(D) = SAT(D')``.

        Raises ``ValueError`` if ``SAT(D)`` is empty (no equivalent consistent
        DTD exists in that case).
        """
        if not self.is_satisfiable():
            raise ValueError("SAT(D) is empty; the DTD admits no conforming tree")
        usable = self.usable_types()
        rules = {}
        attributes = {}
        for element in usable:
            rules[element] = _erase_symbols(self.content_model(element),
                                            keep=usable)
            attributes[element] = set(self.attributes_of(element))
        return DTD(self.root, rules, attributes)

    # ------------------------------------------------------------------ #
    # The DTD graph, recursion, restriction
    # ------------------------------------------------------------------ #

    def graph(self) -> Dict[str, Set[str]]:
        """``G(D)``: edges ``ℓ → ℓ'`` whenever ``ℓ'`` is mentioned in ``P(ℓ)``."""
        return {element: set(self.content_model(element).alphabet())
                for element in self.rules}

    def is_recursive(self) -> bool:
        """True iff ``G(D)`` has a cycle."""
        graph = self.graph()
        WHITE, GREY, BLACK = 0, 1, 2
        colour = {node: WHITE for node in graph}

        def visit(node: str) -> bool:
            colour[node] = GREY
            for nxt in graph.get(node, ()):  # pragma: no branch
                if colour.get(nxt, WHITE) == GREY:
                    return True
                if colour.get(nxt, WHITE) == WHITE and visit(nxt):
                    return True
            colour[node] = BLACK
            return False

        return any(colour[node] == WHITE and visit(node) for node in graph)

    def reachable_from(self, element: str) -> Set[str]:
        """Element types reachable from ``element`` in ``G(D)`` (including it)."""
        graph = self.graph()
        seen = {element}
        frontier = [element]
        while frontier:
            node = frontier.pop()
            for nxt in graph.get(node, ()):  # pragma: no branch
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return seen

    def restricted_to(self, element: str) -> "DTD":
        """``D_ℓ``: the restriction of ``D`` to element types reachable from
        ``ℓ``, with ``ℓ`` as the new root (used in the proof of Theorem 4.5)."""
        reachable = self.reachable_from(element)
        rules = {e: self.content_model(e) for e in reachable}
        attributes = {e: set(self.attributes_of(e)) for e in reachable}
        return DTD(element, rules, attributes)

    # ------------------------------------------------------------------ #
    # Structural classes: simple, nested-relational, univocal
    # ------------------------------------------------------------------ #

    def is_simple(self) -> bool:
        """All content models are simple regular expressions (Section 5.3)."""
        return all(is_simple_regex(model) for model in self.rules.values())

    def is_nested_relational(self) -> bool:
        """Non-recursive and every rule is ``ℓ → l̃_1 … l̃_m`` with distinct
        ``l_i`` and each ``l̃`` one of ``l``, ``l?``, ``l+``, ``l*``."""
        if self.is_recursive():
            return False
        return all(nested_relational_factors(model) is not None
                   for model in self.rules.values())

    def is_univocal(self) -> bool:
        """All content models univocal (Definition 6.9); implies tractable
        certain answers for fully-specified settings (Theorem 6.2)."""
        return all(self.rule_analysis(element).is_univocal()
                   for element in self.rules)

    def nested_relational_lower(self) -> "DTD":
        """``D°`` of Theorem 4.5: ``l → l``, ``l? → ε``, ``l+ → l``, ``l* → ε``."""
        return self._nested_relational_transform(lower=True)

    def nested_relational_upper(self) -> "DTD":
        """``D*`` of Theorem 4.5: every ``l̃`` becomes ``l``."""
        return self._nested_relational_transform(lower=False)

    def _nested_relational_transform(self, lower: bool) -> "DTD":
        rules = {}
        for element, model in self.rules.items():
            factors = nested_relational_factors(model)
            if factors is None:
                raise ValueError(
                    f"rule for {element!r} is not nested-relational: {model}")
            parts = []
            for symbol, quant in factors:
                if quant == "1" or quant == "+":
                    parts.append(sym(symbol))
                elif quant in {"?", "*"}:
                    if not lower:
                        parts.append(sym(symbol))
                else:  # pragma: no cover - defensive
                    raise AssertionError(quant)
            rules[element] = concat(*parts) if parts else epsilon()
        attributes = {e: set(a) for e, a in self.attributes.items()}
        return DTD(self.root, rules, attributes)

    def unique_tree(self) -> XMLTree:
        """For a non-recursive DTD whose rules are plain concatenations of
        distinct symbols (the shape of ``D°``/``D*``), build the unique
        attribute-free conforming tree (used by Theorem 4.5)."""
        tree = XMLTree(self.root, ordered=True)
        self._expand_unique(tree, tree.root, self.root, depth=0)
        return tree

    def _expand_unique(self, tree: XMLTree, node: int, element: str, depth: int) -> None:
        if depth > len(self.rules) + 1:
            raise ValueError("DTD is recursive; no unique finite tree exists")
        factors = nested_relational_factors(self.content_model(element))
        if factors is None or any(q not in {"1"} for _, q in factors):
            raise ValueError(
                f"rule for {element!r} does not determine a unique tree")
        for symbol, _quant in factors:
            child = tree.add_child(node, symbol)
            self._expand_unique(tree, child, symbol, depth + 1)

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #

    def to_text(self) -> str:
        """Render the DTD in the paper's ``ℓ → e`` notation."""
        lines = [f"root: {self.root}"]
        for element in sorted(self.rules):
            attrs = "".join(f" @{a}" for a in sorted(self.attributes_of(element)))
            lines.append(f"  {element} -> {self.content_model(element)}{attrs}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<DTD root={self.root!r} |E|={len(self.rules)}>"


# --------------------------------------------------------------------- #
# Helpers
# --------------------------------------------------------------------- #

def _symbol_occurs_in_language(nfa: NFA, symbol: str, allowed: Set[str]) -> bool:
    """Is there a word of ``L(nfa)`` over ``allowed`` containing ``symbol``?"""
    if symbol not in allowed:
        return False
    # Forward-reachable state sets before reading ``symbol`` ...
    start = nfa.epsilon_closure({nfa.start})
    seen = {start}
    frontier = [start]
    while frontier:
        states = frontier.pop()
        # can we take ``symbol`` here and then reach acceptance?
        after = nfa.step(states, symbol)
        if after and _can_accept(nfa, after, allowed):
            return True
        for letter in allowed & nfa.alphabet:
            nxt = nfa.step(states, letter)
            if nxt and nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return False


def _can_accept(nfa: NFA, states, allowed: Set[str]) -> bool:
    seen = {states}
    frontier = [states]
    while frontier:
        current = frontier.pop()
        if any(s in nfa.accepting for s in current):
            return True
        for letter in allowed & nfa.alphabet:
            nxt = nfa.step(current, letter)
            if nxt and nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return False


def _erase_symbols(model: Regex, keep: Set[str]) -> Regex:
    """The ``ρ`` rewriting of Lemma 2.2: replace dropped symbols by ∅ and
    simplify (the smart constructors implement exactly the ρ equations)."""
    if isinstance(model, Symbol):
        return model if model.name in keep else empty()
    if isinstance(model, (Epsilon, Empty)):
        return model
    if isinstance(model, Concat):
        return concat(_erase_symbols(model.left, keep),
                      _erase_symbols(model.right, keep))
    if isinstance(model, Union):
        return union(_erase_symbols(model.left, keep),
                     _erase_symbols(model.right, keep))
    if isinstance(model, Star):
        return star(_erase_symbols(model.inner, keep))
    raise TypeError(f"unknown regex node: {model!r}")


def nested_relational_factors(model: Regex) -> Optional[List[Tuple[str, str]]]:
    """If ``model`` has the nested-relational shape ``l̃_1 … l̃_m`` with
    pairwise distinct symbols, return the list of ``(symbol, quantifier)``
    pairs with quantifier in ``{"1", "?", "*", "+"}``; otherwise ``None``."""
    flat = _flatten_concat(model)
    factors: List[Tuple[str, str]] = []
    index = 0
    while index < len(flat):
        part = flat[index]
        if isinstance(part, Symbol):
            # ``l`` or, if followed by ``l*``, the expansion of ``l+``.
            if (index + 1 < len(flat) and isinstance(flat[index + 1], Star)
                    and isinstance(flat[index + 1].inner, Symbol)
                    and flat[index + 1].inner.name == part.name):
                factors.append((part.name, "+"))
                index += 2
                continue
            factors.append((part.name, "1"))
            index += 1
            continue
        if isinstance(part, Star) and isinstance(part.inner, Symbol):
            factors.append((part.inner.name, "*"))
            index += 1
            continue
        if isinstance(part, Union):
            symbol = _optional_symbol(part)
            if symbol is not None:
                factors.append((symbol, "?"))
                index += 1
                continue
        if isinstance(part, Epsilon):
            index += 1
            continue
        return None
    symbols = [s for s, _ in factors]
    if len(symbols) != len(set(symbols)):
        return None
    return factors


def _flatten_concat(model: Regex) -> List[Regex]:
    if isinstance(model, Concat):
        return _flatten_concat(model.left) + _flatten_concat(model.right)
    if isinstance(model, Epsilon):
        return []
    return [model]


def _optional_symbol(model: Union) -> Optional[str]:
    left, right = model.left, model.right
    if isinstance(left, Epsilon) and isinstance(right, Symbol):
        return right.name
    if isinstance(right, Epsilon) and isinstance(left, Symbol):
        return left.name
    return None


# --------------------------------------------------------------------- #
# Textual DTD parser (a pragmatic subset of the W3C syntax)
# --------------------------------------------------------------------- #

def parse_dtd(text: str, root: Optional[str] = None) -> DTD:
    """Parse a DTD written in (a subset of) the standard syntax.

    Supports ``<!ELEMENT name (model)>`` with ``,`` ``|`` ``*`` ``+`` ``?``
    and ``EMPTY``, plus ``<!ATTLIST name attr CDATA #REQUIRED>`` declarations
    (only the attribute names are retained).  The root defaults to the first
    declared element.  Example — the source DTD of Figure 1(a)::

        <!ELEMENT db (book*)>
        <!ELEMENT book (author*)>
        <!ATTLIST book title CDATA #REQUIRED>
        <!ELEMENT author EMPTY>
        <!ATTLIST author name CDATA #REQUIRED aff CDATA #REQUIRED>
    """
    import re as _re

    rules: Dict[str, object] = {}
    attributes: Dict[str, Set[str]] = {}
    order: List[str] = []
    element_re = _re.compile(r"<!ELEMENT\s+([\w.\-]+)\s+(.*?)>", _re.S)
    attlist_re = _re.compile(r"<!ATTLIST\s+([\w.\-]+)\s+(.*?)>", _re.S)
    for match in element_re.finditer(text):
        name, model = match.group(1), match.group(2).strip()
        if model in {"EMPTY", "(EMPTY)", "ANY"}:
            rules[name] = epsilon()
        else:
            rules[name] = parse_regex(model)
        order.append(name)
    for match in attlist_re.finditer(text):
        name, body = match.group(1), match.group(2)
        attrs = attributes.setdefault(name, set())
        for attr_match in _re.finditer(r"([\w.\-]+)\s+CDATA\s+#\w+", body):
            attrs.add(attr_match.group(1))
    if not order:
        raise ValueError("no <!ELEMENT> declarations found")
    return DTD(root or order[0], rules, attributes)
