"""XML documents as node-labelled unranked trees (paper, Section 2).

An XML tree over ``(E, A)`` is a finite ordered directed tree
``(N, <child, <sib, root)`` with

* a labelling function ``λ : N → E`` assigning an element type to every node,
* a partial function ``ρ_@a : N → Str`` per attribute ``@a ∈ A``.

The paper also works with *unordered* XML trees (Section 5.2), obtained by
forgetting the sibling order.  We use a single :class:`XMLTree` class with an
``ordered`` flag; children of a node are always stored in a tuple, but for an
unordered tree the tuple order carries no meaning (conformance is checked
against the permutation language ``π(P(ℓ))`` instead of ``L(P(ℓ))``).

Nodes are identified by integer ids local to the tree, which keeps structural
operations (chase rewrites, subtree replacement, homomorphism search) cheap
and explicit.

Two representation choices matter for the hot path:

* child tuples are returned *by reference* from :meth:`XMLTree.children` —
  the read path never copies; all structural mutation goes through the
  tree's mutation methods, which rebuild the (small) sibling tuple;
* every traversal (:meth:`structural_key`, :meth:`to_text`, :meth:`to_xml`,
  subtree copying) is iterative, so arbitrarily deep documents never hit
  the interpreter recursion limit.

:meth:`XMLTree.freeze` snapshots the tree into an immutable
:class:`~repro.xmlmodel.frozen.FrozenTree` — label-interned int arrays with
per-label indexes — which is what the compiled query-plan evaluator
(:mod:`repro.patterns.plan`) consumes.
"""

from __future__ import annotations

import hashlib
from types import MappingProxyType
from typing import (TYPE_CHECKING, Dict, Iterator, List, Mapping, Optional,
                    Sequence, Tuple)

from .values import Value, is_constant, is_null, value_key

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (frozen imports us)
    from .frozen import FrozenTree

__all__ = ["XMLNode", "XMLTree"]


def _attrs_key(attributes: Dict[str, Value]) -> tuple:
    """The canonical ``(name, value_key(value))`` tuple of an attribute map
    — the single definition both structural keys and Merkle digests hash,
    for mutable and frozen trees alike."""
    return tuple(sorted((name, value_key(value))
                        for name, value in attributes.items()))


def _node_digest(label: str, attrs: tuple, child_digests: List[bytes],
                 respect_order: bool) -> bytes:
    """Merkle digest of one node: shallow payload plus child digests.

    ``attrs`` is the sorted tuple of ``(name, value_key(value))`` pairs.
    The payload rendered here is *shallow* (strings and flat tuples only)
    and child digests are fixed-length, so the scheme is unambiguous and —
    unlike rendering one nested structural key for the whole tree — never
    recurses, whatever the document depth.  Unordered trees sort the child
    digests, which canonicalises exactly up to sibling permutation.
    """
    hasher = hashlib.sha256()
    hasher.update(repr((label, attrs)).encode("utf-8"))
    hasher.update(b"|")
    if not respect_order:
        child_digests = sorted(child_digests)
    for digest in child_digests:
        hasher.update(digest)
    return hasher.digest()


class XMLNode:
    """A single node of an :class:`XMLTree`.

    Attributes
    ----------
    ident:
        Integer id, unique within the owning tree.
    label:
        The element type of the node (``λ(v)`` in the paper).
    attributes:
        Read-only mapping attribute-name -> value (``ρ_@a(v)``).  Attribute
        names are stored *without* the leading ``@``.  Mutation goes
        through the owning tree (:meth:`XMLTree.set_attribute`,
        :meth:`XMLTree.clear_attributes`), which keeps the tree's
        fingerprint cache honest — the view raises on write.
    children:
        Child node ids, in sibling order (meaningful only if the tree is
        ordered).  Stored as a tuple: reads share it, mutation methods on
        the owning tree replace it wholesale.
    parent:
        Parent node id, or ``None`` for the root.
    """

    __slots__ = ("ident", "label", "_attributes", "children", "parent")

    def __init__(self, ident: int, label: str,
                 attributes: Optional[Dict[str, Value]] = None,
                 children: Tuple[int, ...] = (),
                 parent: Optional[int] = None) -> None:
        self.ident = ident
        self.label = label
        self._attributes: Dict[str, Value] = dict(attributes or {})
        self.children = children
        self.parent = parent

    @property
    def attributes(self) -> Mapping[str, Value]:
        """The attribute map, as a read-only view of the live storage."""
        return MappingProxyType(self._attributes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"XMLNode(ident={self.ident}, label={self.label!r}, "
                f"attributes={self._attributes!r}, "
                f"children={self.children!r}, parent={self.parent!r})")


class XMLTree:
    """A rooted, node-labelled unranked tree with attribute values.

    The class supports both the ordered trees of Section 2 and the unordered
    trees of Section 5.2; the ``ordered`` flag records which reading is
    intended.  Structural mutation is confined to a small set of methods used
    by the chase (:mod:`repro.exchange.chase`); mutating the node objects
    directly bypasses the fingerprint cache and is not supported.
    """

    def __init__(self, root_label: str, ordered: bool = True) -> None:
        self.ordered = ordered
        self._nodes: Dict[int, XMLNode] = {}
        self._next_id = 0
        #: Memoised fingerprints keyed by the ordered flag; cleared by every
        #: structural mutation (all of which funnel through the methods
        #: below), so repeated cache-key computations on a settled tree are
        #: free.
        self._fp_cache: Dict[bool, str] = {}
        self.root = self._new_node(root_label, parent=None)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def _invalidate(self) -> None:
        if self._fp_cache:
            self._fp_cache.clear()

    def _new_node(self, label: str, parent: Optional[int]) -> int:
        ident = self._next_id
        self._next_id += 1
        self._nodes[ident] = XMLNode(ident=ident, label=label, parent=parent)
        self._invalidate()
        return ident

    def add_child(self, parent: int, label: str,
                  attributes: Optional[Dict[str, Value]] = None,
                  position: Optional[int] = None) -> int:
        """Create a new node labelled ``label`` as a child of ``parent``.

        ``position`` inserts the child at a given index in the sibling order;
        by default the child is appended.
        Returns the new node's id.
        """
        ident = self._new_node(label, parent=parent)
        if attributes:
            self._nodes[ident]._attributes.update(attributes)
        siblings = self._nodes[parent].children
        if position is None:
            self._nodes[parent].children = siblings + (ident,)
        else:
            self._nodes[parent].children = (siblings[:position] + (ident,)
                                            + siblings[position:])
        return ident

    def set_attribute(self, node: int, name: str, value: Value) -> None:
        """Set attribute ``@name`` of ``node`` to ``value``."""
        self._nodes[node]._attributes[name] = value
        self._invalidate()

    def clear_attributes(self, node: int) -> None:
        """Drop every attribute of ``node`` (the write-path counterpart of
        the read-only :meth:`attributes` view)."""
        self._nodes[node]._attributes.clear()
        self._invalidate()

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    def node(self, ident: int) -> XMLNode:
        """Return the node object with the given id."""
        return self._nodes[ident]

    def label(self, ident: int) -> str:
        """Return ``λ(v)``, the element type of node ``ident``."""
        return self._nodes[ident].label

    def attributes(self, ident: int) -> Mapping[str, Value]:
        """Return the attribute map of node ``ident`` (a read-only view —
        write through :meth:`set_attribute` / :meth:`clear_attributes`)."""
        return self._nodes[ident].attributes

    def attribute(self, ident: int, name: str) -> Optional[Value]:
        """Return ``ρ_@name(v)`` or ``None`` if undefined."""
        return self._nodes[ident]._attributes.get(name)

    def children(self, ident: int) -> Tuple[int, ...]:
        """Return the child ids of ``ident`` (in sibling order).

        The tuple is the node's own child storage, returned without copying
        — this sits in the innermost loop of pattern matching.  Mutation
        goes through the tree's methods, which replace the tuple instead of
        modifying it, so a returned tuple is stable forever.
        """
        return self._nodes[ident].children

    def parent(self, ident: int) -> Optional[int]:
        """Return the parent id of ``ident`` (``None`` for the root)."""
        return self._nodes[ident].parent

    def nodes(self) -> Iterator[int]:
        """Iterate over all node ids reachable from the root (pre-order)."""
        stack = [self.root]
        while stack:
            ident = stack.pop()
            yield ident
            stack.extend(reversed(self._nodes[ident].children))

    def __len__(self) -> int:
        return sum(1 for _ in self.nodes())

    def size(self) -> int:
        """Number of nodes plus number of attribute assignments (``‖T‖``)."""
        total = 0
        for ident in self.nodes():
            total += 1 + len(self._nodes[ident]._attributes)
        return total

    def depth(self) -> int:
        """Length (in edges) of the longest root-to-leaf path."""
        best = 0
        stack: List[Tuple[int, int]] = [(self.root, 0)]
        while stack:
            ident, d = stack.pop()
            best = max(best, d)
            for child in self._nodes[ident].children:
                stack.append((child, d + 1))
        return best

    def descendants(self, ident: int, include_self: bool = False) -> Iterator[int]:
        """Iterate over the (proper, by default) descendants of ``ident``."""
        if include_self:
            yield ident
        stack = list(self._nodes[ident].children)
        while stack:
            node = stack.pop()
            yield node
            stack.extend(self._nodes[node].children)

    def is_ancestor(self, ancestor: int, node: int) -> bool:
        """True iff ``ancestor`` is a proper ancestor of ``node``."""
        current = self._nodes[node].parent
        while current is not None:
            if current == ancestor:
                return True
            current = self._nodes[current].parent
        return False

    def children_labels(self, ident: int) -> List[str]:
        """Return the list of labels of ``ident``'s children in sibling order."""
        return [self._nodes[c].label for c in self._nodes[ident].children]

    def values(self) -> Iterator[Value]:
        """Iterate over every attribute value occurring in the tree."""
        for ident in self.nodes():
            yield from self._nodes[ident]._attributes.values()

    def constants(self) -> set:
        """Return the set of constant values occurring in the tree."""
        return {v for v in self.values() if is_constant(v)}

    def nulls(self) -> set:
        """Return the set of nulls occurring in the tree."""
        return {v for v in self.values() if is_null(v)}

    # ------------------------------------------------------------------ #
    # Mutation used by the chase
    # ------------------------------------------------------------------ #

    def remove_subtree(self, ident: int) -> None:
        """Delete node ``ident`` and its whole subtree from the tree."""
        if ident == self.root:
            raise ValueError("cannot remove the root of the tree")
        parent = self._nodes[ident].parent
        if parent is not None:
            siblings = self._nodes[parent].children
            self._nodes[parent].children = tuple(c for c in siblings
                                                 if c != ident)
        doomed = [ident] + list(self.descendants(ident))
        for node in doomed:
            self._nodes.pop(node, None)
        self._invalidate()

    def replace_subtree(self, target: int, source_tree: "XMLTree",
                        source_root: Optional[int] = None) -> int:
        """Replace the subtree rooted at ``target`` with a copy of another tree.

        Used by the path-shortening argument of Theorem 5.5 and by tests; the
        copied subtree keeps its labels and attribute values.  Returns the id
        of the new subtree root in ``self``.
        """
        if target == self.root:
            raise ValueError("cannot replace the root subtree")
        parent = self._nodes[target].parent
        assert parent is not None
        position = self._nodes[parent].children.index(target)
        self.remove_subtree(target)
        src_root = source_root if source_root is not None else source_tree.root
        new_root = self.add_child(parent, source_tree.label(src_root),
                                  dict(source_tree.attributes(src_root)),
                                  position=position)
        self._copy_children(source_tree, src_root, new_root)
        return new_root

    def _copy_children(self, source_tree: "XMLTree", src: int, dst: int) -> None:
        stack = [(src, dst)]
        while stack:
            src_node, dst_node = stack.pop()
            for child in source_tree.children(src_node):
                new_child = self.add_child(dst_node, source_tree.label(child),
                                           dict(source_tree.attributes(child)))
                stack.append((child, new_child))

    def graft_subtree(self, parent: int, source_tree: "XMLTree",
                      source_root: Optional[int] = None) -> int:
        """Copy a subtree of another tree as a new child of ``parent``."""
        src_root = source_root if source_root is not None else source_tree.root
        new_root = self.add_child(parent, source_tree.label(src_root),
                                  dict(source_tree.attributes(src_root)))
        self._copy_children(source_tree, src_root, new_root)
        return new_root

    def merge_children(self, parent: int, victims: Sequence[int]) -> int:
        """Merge several children of ``parent`` into a single fresh node.

        This implements the node-merging step of ``ChangeReg`` (Figure 7): the
        merged node receives the union of the victims' children; attribute
        merging is handled by the caller, which must have checked for clashes.
        The merged node takes the sibling position of the first victim.
        Returns the id of the merged node.
        """
        if not victims:
            raise ValueError("need at least one node to merge")
        # Same precondition the pre-tuple code enforced via .index():
        # every victim must actually be a child of ``parent``, otherwise
        # the rebuild below would silently drop the merged node.
        siblings = set(self._nodes[parent].children)
        strangers = [victim for victim in victims if victim not in siblings]
        if strangers:
            raise ValueError(
                f"cannot merge node(s) {strangers}: not children of "
                f"node {parent}")
        label = self._nodes[victims[0]].label
        merged = self._new_node(label, parent=parent)
        merged_children: List[int] = []
        victim_set = set(victims)
        for victim in victims:
            for child in self._nodes[victim].children:
                self._nodes[child].parent = merged
                merged_children.append(child)
            self._nodes[victim].children = ()
        self._nodes[merged].children = tuple(merged_children)
        siblings = self._nodes[parent].children
        reordered: List[int] = []
        for child in siblings:
            if child == victims[0]:
                reordered.append(merged)
            elif child not in victim_set:
                reordered.append(child)
        self._nodes[parent].children = tuple(reordered)
        for victim in victims:
            self._nodes.pop(victim)
        self._invalidate()
        return merged

    def reorder_children(self, ident: int, new_order: Sequence[int]) -> None:
        """Replace the sibling order of ``ident``'s children.

        ``new_order`` must be a permutation of the current children (used by
        :func:`repro.exchange.ordering.order_tree` to realise a conforming
        sibling order).
        """
        node = self._nodes[ident]
        if sorted(new_order) != sorted(node.children):
            raise ValueError(
                f"new order {list(new_order)!r} is not a permutation of the "
                f"children {list(node.children)!r} of node {ident}")
        node.children = tuple(new_order)
        self._invalidate()

    # ------------------------------------------------------------------ #
    # Copying / comparison / rendering
    # ------------------------------------------------------------------ #

    def copy(self) -> "XMLTree":
        """Return a deep copy of the tree (same node ids)."""
        clone = XMLTree(self.label(self.root), ordered=self.ordered)
        clone._nodes = {}
        clone._next_id = self._next_id
        for ident, node in self._nodes.items():
            clone._nodes[ident] = XMLNode(
                ident=ident,
                label=node.label,
                attributes=node._attributes,
                children=node.children,
                parent=node.parent,
            )
        clone.root = self.root
        clone._fp_cache = dict(self._fp_cache)
        return clone

    def as_unordered(self) -> "XMLTree":
        """Return a copy of this tree flagged as unordered."""
        clone = self.copy()
        clone.ordered = False
        return clone

    def as_ordered(self) -> "XMLTree":
        """Return a copy of this tree flagged as ordered (keeping child lists)."""
        clone = self.copy()
        clone.ordered = True
        return clone

    def _fold_bottom_up(self, ident: int, combine):
        """Iterative bottom-up fold over the subtree rooted at ``ident``:
        ``combine(node, child_results)`` runs once per node, children
        first.  The single traversal behind :meth:`structural_key` and
        :meth:`subtree_digest` — depth is bounded by memory, not the
        interpreter recursion limit."""
        results: Dict[int, object] = {}
        stack: List[Tuple[int, bool]] = [(ident, False)]
        while stack:
            node_id, expanded = stack.pop()
            node = self._nodes[node_id]
            if not expanded:
                stack.append((node_id, True))
                stack.extend((child, False) for child in node.children)
                continue
            child_results = [results.pop(child) for child in node.children]
            results[node_id] = combine(node, child_results)
        return results[ident]

    def structural_key(self, ident: Optional[int] = None,
                       respect_order: Optional[bool] = None) -> tuple:
        """A canonical, hashable key of the subtree rooted at ``ident``.

        Two subtrees have the same key iff they are isomorphic (respecting
        sibling order for ordered trees, ignoring it otherwise) with identical
        labels and attribute values.  Values are keyed type-aware via
        :func:`~repro.xmlmodel.values.value_key` (nulls by identity), so
        distinct values can never alias.
        """
        if ident is None:
            ident = self.root
        if respect_order is None:
            respect_order = self.ordered

        def combine(node: XMLNode, child_keys: list) -> tuple:
            if not respect_order:
                child_keys.sort()
            return (node.label, _attrs_key(node._attributes),
                    tuple(child_keys))

        return self._fold_bottom_up(ident, combine)

    def subtree_digest(self, ident: Optional[int] = None,
                       respect_order: Optional[bool] = None) -> bytes:
        """Merkle digest of the subtree rooted at ``ident`` (iterative).

        Two subtrees have the same digest iff they are isomorphic
        (respecting sibling order when asked) with identical labels and
        attribute values — the hashed analogue of :meth:`structural_key`,
        usable at any depth because no nested key is ever rendered whole.
        """
        if ident is None:
            ident = self.root
        if respect_order is None:
            respect_order = self.ordered
        return self._fold_bottom_up(
            ident,
            lambda node, child_digests: _node_digest(
                node.label, _attrs_key(node._attributes), child_digests,
                respect_order))

    def fingerprint(self) -> str:
        """A content fingerprint of the tree: the hex SHA-256 of the root's
        Merkle :meth:`subtree_digest` plus the ordered flag (labels,
        attribute values and — for ordered trees — sibling order).  Two
        trees have the same fingerprint iff they are structurally equal, so
        the digest is a sound cache key for per-tree results (the engine's
        result cache keys on it).  Nulls are fingerprinted by identity
        (``⊥n``), type-aware via
        :func:`~repro.xmlmodel.values.value_key`.  The digest is memoised
        per ordered-flag and invalidated by every structural mutation, so
        repeated cache-key computations on a settled tree cost a dict
        lookup."""
        cached = self._fp_cache.get(self.ordered)
        if cached is None:
            hasher = hashlib.sha256()
            hasher.update(b"ordered" if self.ordered else b"unordered")
            hasher.update(self.subtree_digest())
            cached = hasher.hexdigest()
            self._fp_cache[self.ordered] = cached
        return cached

    def freeze(self) -> "FrozenTree":
        """Snapshot the tree into an immutable
        :class:`~repro.xmlmodel.frozen.FrozenTree` (label-interned arrays,
        per-label indexes, iterative cached fingerprint) — the input format
        of the compiled plan evaluator.  Later mutations of this tree do not
        affect the snapshot."""
        from .frozen import FrozenTree
        return FrozenTree.from_tree(self)

    def equals(self, other: "XMLTree", respect_order: Optional[bool] = None) -> bool:
        """Structural equality of two trees (see :meth:`structural_key`).

        Compared via :meth:`subtree_digest`, so arbitrarily deep documents
        compare without recursing through nested keys."""
        if respect_order is None:
            respect_order = self.ordered and other.ordered
        return (self.subtree_digest(respect_order=respect_order)
                == other.subtree_digest(respect_order=respect_order))

    def to_text(self, ident: Optional[int] = None, indent: int = 0) -> str:
        """Human-readable indented rendering of the (sub)tree (iterative)."""
        if ident is None:
            ident = self.root
        parts: List[str] = []
        stack: List[Tuple[int, int]] = [(ident, indent)]
        while stack:
            node_id, level = stack.pop()
            node = self._nodes[node_id]
            attrs = " ".join(f"@{k}={v!r}"
                             for k, v in sorted(node._attributes.items()))
            parts.append("  " * level + node.label
                         + (f" [{attrs}]" if attrs else ""))
            stack.extend((child, level + 1)
                         for child in reversed(node.children))
        return "\n".join(parts)

    def to_xml(self, ident: Optional[int] = None) -> str:
        """Serialise the (sub)tree to an XML string (nulls rendered as
        ``⊥n``).  Iterative: deep documents never hit the recursion limit."""
        if ident is None:
            ident = self.root
        out: List[str] = []
        #: (node id, opened?): the False entry emits the opening tag and
        #: re-pushes itself as True to emit the closing tag after the
        #: children are done.
        stack: List[Tuple[int, bool]] = [(ident, False)]
        while stack:
            node_id, closing = stack.pop()
            node = self._nodes[node_id]
            if closing:
                out.append(f"</{node.label}>")
                continue
            attrs = "".join(
                f' {k}="{v}"'
                for k, v in sorted(node._attributes.items(),
                                   key=lambda kv: kv[0]))
            if not node.children:
                out.append(f"<{node.label}{attrs}/>")
                continue
            out.append(f"<{node.label}{attrs}>")
            stack.append((node_id, True))
            stack.extend((child, False) for child in reversed(node.children))
        return "".join(out)

    def __repr__(self) -> str:
        kind = "ordered" if self.ordered else "unordered"
        return f"<XMLTree {kind} root={self.label(self.root)!r} nodes={len(self)}>"

    # ------------------------------------------------------------------ #
    # Convenience builders
    # ------------------------------------------------------------------ #

    @classmethod
    def build(cls, spec, ordered: bool = True) -> "XMLTree":
        """Build a tree from a nested-tuple specification.

        ``spec`` is ``(label, attrs_dict, [child_spec, ...])`` where the
        attribute dict and the children list may be omitted.  Example::

            XMLTree.build(("db", [("book", {"title": "CC"},
                                   [("author", {"name": "P", "aff": "UCB"})])]))
        """
        label, attrs, children = cls._normalise_spec(spec)
        tree = cls(label, ordered=ordered)
        for key, val in attrs.items():
            tree.set_attribute(tree.root, key, val)
        for child in children:
            cls._build_into(tree, tree.root, child)
        return tree

    @classmethod
    def _build_into(cls, tree: "XMLTree", parent: int, spec) -> None:
        label, attrs, children = cls._normalise_spec(spec)
        node = tree.add_child(parent, label, dict(attrs))
        for child in children:
            cls._build_into(tree, node, child)

    @staticmethod
    def _normalise_spec(spec) -> Tuple[str, Dict[str, Value], list]:
        if isinstance(spec, str):
            return spec, {}, []
        label = spec[0]
        attrs: Dict[str, Value] = {}
        children: list = []
        for part in spec[1:]:
            if isinstance(part, dict):
                attrs = part
            else:
                children = list(part)
        return label, attrs, children
