"""XML documents as node-labelled unranked trees (paper, Section 2).

An XML tree over ``(E, A)`` is a finite ordered directed tree
``(N, <child, <sib, root)`` with

* a labelling function ``λ : N → E`` assigning an element type to every node,
* a partial function ``ρ_@a : N → Str`` per attribute ``@a ∈ A``.

The paper also works with *unordered* XML trees (Section 5.2), obtained by
forgetting the sibling order.  We use a single :class:`XMLTree` class with an
``ordered`` flag; children of a node are always stored in a list, but for an
unordered tree the list order carries no meaning (conformance is checked
against the permutation language ``π(P(ℓ))`` instead of ``L(P(ℓ))``).

Nodes are identified by integer ids local to the tree, which keeps structural
operations (chase rewrites, subtree replacement, homomorphism search) cheap
and explicit.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .values import Value, is_constant, is_null

__all__ = ["XMLNode", "XMLTree"]


@dataclass
class XMLNode:
    """A single node of an :class:`XMLTree`.

    Attributes
    ----------
    ident:
        Integer id, unique within the owning tree.
    label:
        The element type of the node (``λ(v)`` in the paper).
    attributes:
        Mapping attribute-name -> value (``ρ_@a(v)``).  Attribute names are
        stored *without* the leading ``@``.
    children:
        Child node ids, in sibling order (meaningful only if the tree is
        ordered).
    parent:
        Parent node id, or ``None`` for the root.
    """

    ident: int
    label: str
    attributes: Dict[str, Value] = field(default_factory=dict)
    children: List[int] = field(default_factory=list)
    parent: Optional[int] = None


class XMLTree:
    """A rooted, node-labelled unranked tree with attribute values.

    The class supports both the ordered trees of Section 2 and the unordered
    trees of Section 5.2; the ``ordered`` flag records which reading is
    intended.  Structural mutation is confined to a small set of methods used
    by the chase (:mod:`repro.exchange.chase`).
    """

    def __init__(self, root_label: str, ordered: bool = True) -> None:
        self.ordered = ordered
        self._nodes: Dict[int, XMLNode] = {}
        self._next_id = 0
        self.root = self._new_node(root_label, parent=None)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def _new_node(self, label: str, parent: Optional[int]) -> int:
        ident = self._next_id
        self._next_id += 1
        self._nodes[ident] = XMLNode(ident=ident, label=label, parent=parent)
        return ident

    def add_child(self, parent: int, label: str,
                  attributes: Optional[Dict[str, Value]] = None,
                  position: Optional[int] = None) -> int:
        """Create a new node labelled ``label`` as a child of ``parent``.

        ``position`` inserts the child at a given index in the sibling order;
        by default the child is appended.
        Returns the new node's id.
        """
        ident = self._new_node(label, parent=parent)
        if attributes:
            self._nodes[ident].attributes.update(attributes)
        siblings = self._nodes[parent].children
        if position is None:
            siblings.append(ident)
        else:
            siblings.insert(position, ident)
        return ident

    def set_attribute(self, node: int, name: str, value: Value) -> None:
        """Set attribute ``@name`` of ``node`` to ``value``."""
        self._nodes[node].attributes[name] = value

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    def node(self, ident: int) -> XMLNode:
        """Return the node object with the given id."""
        return self._nodes[ident]

    def label(self, ident: int) -> str:
        """Return ``λ(v)``, the element type of node ``ident``."""
        return self._nodes[ident].label

    def attributes(self, ident: int) -> Dict[str, Value]:
        """Return the attribute map of node ``ident``."""
        return self._nodes[ident].attributes

    def attribute(self, ident: int, name: str) -> Optional[Value]:
        """Return ``ρ_@name(v)`` or ``None`` if undefined."""
        return self._nodes[ident].attributes.get(name)

    def children(self, ident: int) -> List[int]:
        """Return the list of child ids of ``ident`` (in sibling order)."""
        return list(self._nodes[ident].children)

    def parent(self, ident: int) -> Optional[int]:
        """Return the parent id of ``ident`` (``None`` for the root)."""
        return self._nodes[ident].parent

    def nodes(self) -> Iterator[int]:
        """Iterate over all node ids reachable from the root (pre-order)."""
        stack = [self.root]
        while stack:
            ident = stack.pop()
            yield ident
            stack.extend(reversed(self._nodes[ident].children))

    def __len__(self) -> int:
        return sum(1 for _ in self.nodes())

    def size(self) -> int:
        """Number of nodes plus number of attribute assignments (``‖T‖``)."""
        total = 0
        for ident in self.nodes():
            total += 1 + len(self._nodes[ident].attributes)
        return total

    def depth(self) -> int:
        """Length (in edges) of the longest root-to-leaf path."""
        best = 0
        stack: List[Tuple[int, int]] = [(self.root, 0)]
        while stack:
            ident, d = stack.pop()
            best = max(best, d)
            for child in self._nodes[ident].children:
                stack.append((child, d + 1))
        return best

    def descendants(self, ident: int, include_self: bool = False) -> Iterator[int]:
        """Iterate over the (proper, by default) descendants of ``ident``."""
        if include_self:
            yield ident
        stack = list(self._nodes[ident].children)
        while stack:
            node = stack.pop()
            yield node
            stack.extend(self._nodes[node].children)

    def is_ancestor(self, ancestor: int, node: int) -> bool:
        """True iff ``ancestor`` is a proper ancestor of ``node``."""
        current = self._nodes[node].parent
        while current is not None:
            if current == ancestor:
                return True
            current = self._nodes[current].parent
        return False

    def children_labels(self, ident: int) -> List[str]:
        """Return the list of labels of ``ident``'s children in sibling order."""
        return [self._nodes[c].label for c in self._nodes[ident].children]

    def values(self) -> Iterator[Value]:
        """Iterate over every attribute value occurring in the tree."""
        for ident in self.nodes():
            yield from self._nodes[ident].attributes.values()

    def constants(self) -> set:
        """Return the set of constant values occurring in the tree."""
        return {v for v in self.values() if is_constant(v)}

    def nulls(self) -> set:
        """Return the set of nulls occurring in the tree."""
        return {v for v in self.values() if is_null(v)}

    # ------------------------------------------------------------------ #
    # Mutation used by the chase
    # ------------------------------------------------------------------ #

    def remove_subtree(self, ident: int) -> None:
        """Delete node ``ident`` and its whole subtree from the tree."""
        if ident == self.root:
            raise ValueError("cannot remove the root of the tree")
        parent = self._nodes[ident].parent
        if parent is not None:
            self._nodes[parent].children.remove(ident)
        doomed = [ident] + list(self.descendants(ident))
        for node in doomed:
            self._nodes.pop(node, None)

    def replace_subtree(self, target: int, source_tree: "XMLTree",
                        source_root: Optional[int] = None) -> int:
        """Replace the subtree rooted at ``target`` with a copy of another tree.

        Used by the path-shortening argument of Theorem 5.5 and by tests; the
        copied subtree keeps its labels and attribute values.  Returns the id
        of the new subtree root in ``self``.
        """
        if target == self.root:
            raise ValueError("cannot replace the root subtree")
        parent = self._nodes[target].parent
        assert parent is not None
        position = self._nodes[parent].children.index(target)
        self.remove_subtree(target)
        src_root = source_root if source_root is not None else source_tree.root
        new_root = self.add_child(parent, source_tree.label(src_root),
                                  dict(source_tree.attributes(src_root)),
                                  position=position)
        self._copy_children(source_tree, src_root, new_root)
        return new_root

    def _copy_children(self, source_tree: "XMLTree", src: int, dst: int) -> None:
        for child in source_tree.children(src):
            new_child = self.add_child(dst, source_tree.label(child),
                                       dict(source_tree.attributes(child)))
            self._copy_children(source_tree, child, new_child)

    def graft_subtree(self, parent: int, source_tree: "XMLTree",
                      source_root: Optional[int] = None) -> int:
        """Copy a subtree of another tree as a new child of ``parent``."""
        src_root = source_root if source_root is not None else source_tree.root
        new_root = self.add_child(parent, source_tree.label(src_root),
                                  dict(source_tree.attributes(src_root)))
        self._copy_children(source_tree, src_root, new_root)
        return new_root

    def merge_children(self, parent: int, victims: Sequence[int]) -> int:
        """Merge several children of ``parent`` into a single fresh node.

        This implements the node-merging step of ``ChangeReg`` (Figure 7): the
        merged node receives the union of the victims' children; attribute
        merging is handled by the caller, which must have checked for clashes.
        Returns the id of the merged node.
        """
        if not victims:
            raise ValueError("need at least one node to merge")
        label = self._nodes[victims[0]].label
        position = self._nodes[parent].children.index(victims[0])
        merged = self._new_node(label, parent=parent)
        self._nodes[parent].children.insert(position, merged)
        for victim in victims:
            for child in self._nodes[victim].children:
                self._nodes[child].parent = merged
                self._nodes[merged].children.append(child)
            self._nodes[victim].children = []
            self._nodes[parent].children.remove(victim)
            self._nodes.pop(victim)
        return merged

    # ------------------------------------------------------------------ #
    # Copying / comparison / rendering
    # ------------------------------------------------------------------ #

    def copy(self) -> "XMLTree":
        """Return a deep copy of the tree (same node ids)."""
        clone = XMLTree(self.label(self.root), ordered=self.ordered)
        clone._nodes = {}
        clone._next_id = self._next_id
        for ident, node in self._nodes.items():
            clone._nodes[ident] = XMLNode(
                ident=ident,
                label=node.label,
                attributes=dict(node.attributes),
                children=list(node.children),
                parent=node.parent,
            )
        clone.root = self.root
        return clone

    def as_unordered(self) -> "XMLTree":
        """Return a copy of this tree flagged as unordered."""
        clone = self.copy()
        clone.ordered = False
        return clone

    def as_ordered(self) -> "XMLTree":
        """Return a copy of this tree flagged as ordered (keeping child lists)."""
        clone = self.copy()
        clone.ordered = True
        return clone

    def structural_key(self, ident: Optional[int] = None,
                       respect_order: Optional[bool] = None) -> tuple:
        """A canonical, hashable key of the subtree rooted at ``ident``.

        Two subtrees have the same key iff they are isomorphic (respecting
        sibling order for ordered trees, ignoring it otherwise) with identical
        labels and attribute values.  Nulls are compared by identity.
        """
        if ident is None:
            ident = self.root
        if respect_order is None:
            respect_order = self.ordered
        node = self._nodes[ident]
        attrs = tuple(sorted((k, repr(v)) for k, v in node.attributes.items()))
        child_keys = [self.structural_key(c, respect_order) for c in node.children]
        if not respect_order:
            child_keys.sort()
        return (node.label, attrs, tuple(child_keys))

    def fingerprint(self) -> str:
        """A content fingerprint of the tree: the SHA-256 digest of its
        :meth:`structural_key` (labels, attribute values and — for ordered
        trees — sibling order).  Two trees have the same fingerprint iff they
        are structurally equal, so the digest is a sound cache key for
        per-tree results (the engine's result cache keys on it).  Nulls are
        fingerprinted by identity (``⊥n``)."""
        key = repr((self.ordered, self.structural_key()))
        return hashlib.sha256(key.encode("utf-8")).hexdigest()

    def equals(self, other: "XMLTree", respect_order: Optional[bool] = None) -> bool:
        """Structural equality of two trees (see :meth:`structural_key`)."""
        if respect_order is None:
            respect_order = self.ordered and other.ordered
        return (self.structural_key(respect_order=respect_order)
                == other.structural_key(respect_order=respect_order))

    def to_text(self, ident: Optional[int] = None, indent: int = 0) -> str:
        """Human-readable indented rendering of the (sub)tree."""
        if ident is None:
            ident = self.root
        node = self._nodes[ident]
        attrs = " ".join(f"@{k}={v!r}" for k, v in sorted(node.attributes.items()))
        line = "  " * indent + node.label + (f" [{attrs}]" if attrs else "")
        parts = [line]
        for child in node.children:
            parts.append(self.to_text(child, indent + 1))
        return "\n".join(parts)

    def to_xml(self, ident: Optional[int] = None) -> str:
        """Serialise the (sub)tree to an XML string (nulls rendered as ``⊥n``)."""
        if ident is None:
            ident = self.root
        node = self._nodes[ident]
        attrs = "".join(
            f' {k}="{v}"' for k, v in sorted(node.attributes.items(), key=lambda kv: kv[0])
        )
        if not node.children:
            return f"<{node.label}{attrs}/>"
        inner = "".join(self.to_xml(c) for c in node.children)
        return f"<{node.label}{attrs}>{inner}</{node.label}>"

    def __repr__(self) -> str:
        kind = "ordered" if self.ordered else "unordered"
        return f"<XMLTree {kind} root={self.label(self.root)!r} nodes={len(self)}>"

    # ------------------------------------------------------------------ #
    # Convenience builders
    # ------------------------------------------------------------------ #

    @classmethod
    def build(cls, spec, ordered: bool = True) -> "XMLTree":
        """Build a tree from a nested-tuple specification.

        ``spec`` is ``(label, attrs_dict, [child_spec, ...])`` where the
        attribute dict and the children list may be omitted.  Example::

            XMLTree.build(("db", [("book", {"title": "CC"},
                                   [("author", {"name": "P", "aff": "UCB"})])]))
        """
        label, attrs, children = cls._normalise_spec(spec)
        tree = cls(label, ordered=ordered)
        for key, val in attrs.items():
            tree.set_attribute(tree.root, key, val)
        for child in children:
            cls._build_into(tree, tree.root, child)
        return tree

    @classmethod
    def _build_into(cls, tree: "XMLTree", parent: int, spec) -> None:
        label, attrs, children = cls._normalise_spec(spec)
        node = tree.add_child(parent, label, dict(attrs))
        for child in children:
            cls._build_into(tree, node, child)

    @staticmethod
    def _normalise_spec(spec) -> Tuple[str, Dict[str, Value], list]:
        if isinstance(spec, str):
            return spec, {}, []
        label = spec[0]
        attrs: Dict[str, Value] = {}
        children: list = []
        for part in spec[1:]:
            if isinstance(part, dict):
                attrs = part
            else:
                children = list(part)
        return label, attrs, children
