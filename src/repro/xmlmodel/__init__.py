"""XML document model: trees, attribute values and DTDs (paper, Section 2)."""

from .dtd import DTD, nested_relational_factors, parse_dtd
from .frozen import FrozenTree
from .tree import XMLNode, XMLTree
from .values import (Null, NullFactory, Value, fresh_null, is_constant,
                     is_null, value_key)

__all__ = [
    "XMLTree", "XMLNode", "FrozenTree",
    "Null", "NullFactory", "Value", "fresh_null", "is_constant", "is_null",
    "value_key",
    "DTD", "parse_dtd", "nested_relational_factors",
]
