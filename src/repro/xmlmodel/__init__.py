"""XML document model: trees, attribute values and DTDs (paper, Section 2)."""

from .dtd import DTD, nested_relational_factors, parse_dtd
from .tree import XMLNode, XMLTree
from .values import Null, NullFactory, Value, fresh_null, is_constant, is_null

__all__ = [
    "XMLTree", "XMLNode",
    "Null", "NullFactory", "Value", "fresh_null", "is_constant", "is_null",
    "DTD", "parse_dtd", "nested_relational_factors",
]
