#!/usr/bin/env python3
"""Quickstart for ReproStore: a corpus that outlives the process.

Where ``examples/service_quickstart.py`` serves RAM-lifetime documents,
this example runs the register-a-corpus-once, query-forever shape: a
:class:`CorpusStore` (SQLite catalog + mmap'd columnar heap) ingests a
batch of documents once, every later request addresses them **by
fingerprint** instead of re-uploading the tree, and a *second* service
process restores its compiled settings from the same store so its first
request is plan-warm (``prewarm_hits``, zero ``compiled_misses``).

Run with:  python examples/storage_quickstart.py
"""

import asyncio
import tempfile
from pathlib import Path

from repro.engine import ExchangeEngine, compile_setting
from repro.service import AsyncExchangeService
from repro.storage import CorpusStore, UnknownDocumentError
from repro.workloads import library


def engine_demo(store_path: Path) -> str:
    """Ingest a small corpus, then query it by fingerprint only."""
    setting = library.library_setting()
    trees = [library.generate_source(4, authors_per_book=2, seed=seed)
             for seed in range(5)]
    query = library.query_writer_of("Book-0")

    with CorpusStore(store_path) as store:
        # Chunked bulk ingest: trees are frozen to the columnar pre/post
        # record format and committed atomically per chunk — a crash
        # mid-ingest never corrupts what was already committed.
        fingerprints = store.put_trees(trees)
        print(f"ingested             : {store.summary()['store_documents']} "
              f"documents, {store.summary()['store_data_bytes']} heap bytes")

        # With a store attached, every per-tree engine call accepts a
        # fingerprint wherever it accepts an inline tree — same results,
        # same result-cache keys, no re-upload.
        engine = ExchangeEngine(compile_setting(setting))
        engine.attach_store(store)
        answers = engine.certain_answers(fingerprints[0], query)
        print("writers of Book-0    :", sorted(answers.payload))
        print("store counters       :",
              {key: value for key, value in answers.cache.items()
               if key.startswith("store_")})

        # A miss is a typed error carrying the unresolved fingerprint.
        try:
            engine.certain_answers("ab" * 32, query)
        except UnknownDocumentError as error:
            print(f"unknown fingerprint  : typed miss for "
                  f"{error.fingerprint[:16]}…")

        # Persist the *compiled* setting so the next process can skip
        # compilation entirely (see restart_demo below).
        store.put_setting(engine.compiled, prewarm=True)
    return fingerprints[0]


async def service_demo(store_path: Path, document_fp: str) -> None:
    """The same store behind the async service: put_tree + fp requests."""
    query = library.query_writer_of("Book-0")
    async with AsyncExchangeService(executor="thread", parallel=2,
                                    store=store_path) as service:
        setting_fp = service.register(library.library_setting(),
                                      persist=True)
        # New documents enter the corpus through the service...
        extra = library.generate_source(4, authors_per_book=2, seed=99)
        extra_fp = await service.put_tree(extra)
        # ...and both old and new are addressable by fingerprint.
        for label, fp in [("ingested earlier", document_fp),
                          ("just put_tree'd", extra_fp)]:
            answers = await service.certain_answers(setting_fp, fp, query)
            print(f"{label:20s} : {sorted(answers.payload)}")
        print("registry store stats :",
              {key: value
               for key, value in service.stats()["registry"].items()
               if key.startswith("store_")})


async def restart_demo(store_path: Path, document_fp: str) -> None:
    """A fresh service on the same store answers plan-warm from request 1.

    This is the restart contract: ``register(persist=True)`` pickled the
    compiled setting above, so ``restore_settings()`` here re-admits it
    already compiled — the first request is a ``compiled_hit`` riding a
    ``prewarm_hit``, never a ``compiled_miss``.  The JSON-lines server
    does the same on boot via ``python -m repro.service.server --store
    PATH`` (and ``python -m repro.service.client --smoke-restart`` proves
    it end-to-end over two server processes).
    """
    query = library.query_writer_of("Book-0")
    async with AsyncExchangeService(executor="thread", parallel=2,
                                    store=store_path) as service:
        restored = service.restore_settings()
        answers = await service.certain_answers(restored[0], document_fp,
                                                query)
        stats = service.stats()["registry"]
        print(f"restored settings    : {len(restored)}")
        print(f"first-request answer : {sorted(answers.payload)}")
        print(f"plan-warm restart    : compiled_misses="
              f"{stats['compiled_misses']} "
              f"prewarm_hits={stats['prewarm_hits']}")


if __name__ == "__main__":
    with tempfile.TemporaryDirectory() as tmp:
        corpus = Path(tmp) / "corpus"
        first_fp = engine_demo(corpus)
        asyncio.run(service_demo(corpus, first_fp))
        asyncio.run(restart_demo(corpus, first_fp))
