#!/usr/bin/env python3
"""Consistency analysis of XML data exchange settings (Section 4).

Shows

* the paper's inconsistent setting ``r[1[2(@a=x)]] :– r`` with target
  ``r → 1|2`` (Section 4's opening example),
* a consistent repair of the same setting,
* the polynomial nested-relational check of Theorem 4.5 versus the general
  (exponential) procedure of Theorem 4.1,
* the NP-hard consistency instances of Proposition 4.4 built from 3-CNF
  formulas: consistency coincides with satisfiability.

Run with:  python examples/consistency_analysis.py
"""

from repro import DTD, DataExchangeSetting, check_consistency, std
from repro.exchange import check_consistency_nested_relational
from repro.reductions import proposition_4_4
from repro.reductions.sat import dpll_satisfiable, random_3cnf
from repro.workloads import nested_relational as nr


def section_4_example() -> None:
    print("== Section 4 opening example ==")
    source_dtd = DTD("rs", {"rs": ""})
    target_dtd = DTD("r", {"r": "l1 | l2", "l1": "", "l2": ""}, {"l2": ["a"]})
    setting = DataExchangeSetting(source_dtd, target_dtd,
                                  [std("r[l1[l2(@a=x)]]", "rs")])
    print("  target r → l1|l2, STD forces r[l1[l2]]:",
          "consistent" if check_consistency(setting).consistent else "INCONSISTENT")

    richer = DTD("r", {"r": "l1 | l2", "l1": "l2?", "l2": ""}, {"l2": ["a"]})
    repaired = DataExchangeSetting(source_dtd, richer,
                                   [std("r[l1[l2(@a=x)]]", "rs")])
    print("  after allowing l1 → l2?:",
          "consistent" if check_consistency(repaired).consistent else "INCONSISTENT")


def nested_relational_vs_general() -> None:
    print("\n== Theorem 4.5 (O(n·m²)) vs the general procedure ==")
    setting = nr.company_setting()
    fast = check_consistency_nested_relational(setting)
    slow = check_consistency(setting, method="general")
    print(f"  nested-relational check: {fast.consistent}")
    print(f"  general check:           {slow.consistent} "
          f"({slow.detail or 'witness found'})")


def proposition_4_4_instances() -> None:
    print("\n== Proposition 4.4: consistency == 3-SAT satisfiability ==")
    for seed in range(4):
        formula = random_3cnf(n_variables=4, n_clauses=7, seed=seed)
        setting = proposition_4_4.consistency_instance(formula)
        sat = dpll_satisfiable(formula) is not None
        consistent = check_consistency(setting).consistent
        status = "OK " if sat == consistent else "MISMATCH"
        print(f"  [{status}] {formula}  sat={sat}  consistent={consistent}")


if __name__ == "__main__":
    section_4_example()
    nested_relational_vs_general()
    proposition_4_4_instances()
