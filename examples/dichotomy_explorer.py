#!/usr/bin/env python3
"""Exploring the dichotomy of Theorem 6.2 and the hardness gadgets.

Classifies a range of target content models as univocal / non-univocal,
classifies whole settings as tractable or (potentially) coNP-hard, and runs
the Lemma 6.20 and Theorem 5.11 reductions on a small 3-CNF formula,
exhibiting how a satisfying assignment turns into a solution on which the
hardness query is false.

Run with:  python examples/dichotomy_explorer.py
"""

from repro import c_value, classify_setting, is_univocal, parse_regex
from repro.reductions import lemma_6_20, theorem_5_11
from repro.reductions.sat import CNFFormula, dpll_satisfiable
from repro.workloads import library


def regex_zoo() -> None:
    print("== Univocality of content models (Definition 6.9) ==")
    zoo = ["(writer)*", "b c+ d* e?", "(b*|c*)", "(b c)* (d e)*",
           "a | a a b*", "a a b*", "a | b", "(a|b|c)*", "a? b* c+ d"]
    for text in zoo:
        expr = parse_regex(text)
        print(f"  {text:<15} c(r) = {c_value(expr)}   univocal = {is_univocal(expr)}")


def setting_classification() -> None:
    print("\n== Setting classification (Theorem 6.2 / Theorem 5.11) ==")
    print("  library setting:   ", classify_setting(library.library_setting()).summary())
    print("  Thm 5.11 gadget:   ", classify_setting(theorem_5_11.build_gadget().setting).summary())
    print("  Lemma 6.20 gadget: ",
          classify_setting(lemma_6_20.build_gadget("a | a a b*").setting).summary())


def run_gadgets() -> None:
    print("\n== Running the hardness gadgets on θ = (x1∨x2∨¬x3) ∧ (¬x2∨x3∨¬x4) ==")
    theta = CNFFormula.of([(1, 2, -3), (-2, 3, -4)])
    assignment = dpll_satisfiable(theta)
    print("  satisfying assignment:", assignment)

    gadget = theorem_5_11.build_gadget()
    source = theorem_5_11.encode_formula(theta)
    solution = theorem_5_11.solution_from_assignment(theta, assignment)
    print("  [Thm 5.11]  T_θ nodes:", len(source),
          "| constructed T' is a solution:",
          gadget.setting.is_unordered_solution(source, solution),
          "| Q(T') =", gadget.query.holds(solution),
          "⇒ certain(Q, T_θ) = false")

    gadget20 = lemma_6_20.build_gadget("a | a a b*")
    source20 = lemma_6_20.encode_formula(gadget20, theta)
    solution20 = lemma_6_20.solution_from_assignment(gadget20, theta, assignment)
    print("  [Lemma 6.20] pivot =", gadget20.pivot, "k =", gadget20.k,
          "| solution:", gadget20.setting.is_unordered_solution(source20, solution20),
          "| Q(T') =", gadget20.query.holds(solution20),
          "⇒ certain(Q, T_θ) = false")


if __name__ == "__main__":
    regex_zoo()
    setting_classification()
    run_gadgets()
