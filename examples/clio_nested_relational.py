#!/usr/bin/env python3
"""Clio-style nested-relational exchange (Theorem 4.5 / Corollary 6.11).

A company database (departments → employees, projects) is restructured into a
staffing directory grouped by person plus a flat project registry.  Both DTDs
are nested-relational, so consistency is decided in O(n·m²) and certain
answers are computed in polynomial time via the canonical solution.

Run with:  python examples/clio_nested_relational.py
"""

from repro import (certain_answers, check_consistency, classify_setting,
                   canonical_solution, order_tree, parse_pattern,
                   pattern_query)
from repro.workloads import nested_relational as nr


def main() -> None:
    setting = nr.company_setting()
    source = nr.generate_company_source(n_departments=3, employees_per_dept=3,
                                        projects_per_dept=2, seed=42)

    print("Source DTD:")
    print(setting.source_dtd.to_text())
    print("\nTarget DTD:")
    print(setting.target_dtd.to_text())
    print("\nBoth nested-relational:",
          setting.source_dtd.is_nested_relational(),
          setting.target_dtd.is_nested_relational())
    print("Classification:", classify_setting(setting).summary())

    consistency = check_consistency(setting)
    print(f"Consistency ({consistency.method}):", consistency.consistent)

    result = canonical_solution(setting, source)
    print(f"\nCanonical solution: {len(result.tree)} nodes, "
          f"{len(result.steps)} chase steps")
    ordered = order_tree(result.tree, setting.target_dtd)
    print("Ordered solution conforms:", setting.target_dtd.conforms(ordered))

    print("\nCertain answers")
    print("  projects registered for Dept-1:",
          sorted(certain_answers(setting, source,
                                 nr.query_projects_of("Dept-1")).answers))
    roles = pattern_query(parse_pattern(
        'directory[person(@name=n)[position(@dept="Dept-0", @role=r)]]'))
    print("  who works in Dept-0 and in which role:",
          sorted(certain_answers(setting, source, roles).answers))
    salaries = pattern_query(parse_pattern(
        "directory[person(@name=n)[position(@salary=s)]]"))
    print("  (name, salary) pairs that are certain:",
          sorted(certain_answers(setting, source, salaries).answers),
          "(salaries are invented nulls)")


if __name__ == "__main__":
    main()
