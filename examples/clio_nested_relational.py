#!/usr/bin/env python3
"""Clio-style nested-relational exchange (Theorem 4.5 / Corollary 6.11).

A company database (departments → employees, projects) is restructured into a
staffing directory grouped by person plus a flat project registry.  Both DTDs
are nested-relational, so consistency is decided in O(n·m²) and certain
answers are computed in polynomial time via the canonical solution.  The
setting is compiled once (``nr.company_engine()``) and the three queries are
answered as one batch against the shared compiled state.

Run with:  python examples/clio_nested_relational.py
"""

from repro import order_tree, parse_pattern, pattern_query
from repro.workloads import nested_relational as nr


def main() -> None:
    engine = nr.company_engine()
    setting = engine.setting
    source = nr.generate_company_source(n_departments=3, employees_per_dept=3,
                                        projects_per_dept=2, seed=42)

    print("Source DTD:")
    print(setting.source_dtd.to_text())
    print("\nTarget DTD:")
    print(setting.target_dtd.to_text())
    print("\nBoth nested-relational:", engine.compiled.nested_relational)
    print("Classification:", engine.classify().detail)

    consistency = engine.check_consistency()
    print(f"Consistency ({consistency.strategy}):", consistency.payload)

    solved = engine.solve(source)
    print(f"\nCanonical solution: {len(solved.payload)} nodes, "
          f"{len(solved.raw.steps)} chase steps, "
          f"{solved.elapsed * 1e3:.1f} ms")
    ordered = order_tree(solved.payload, setting.target_dtd)
    print("Ordered solution conforms:", setting.target_dtd.conforms(ordered))

    roles = pattern_query(parse_pattern(
        'directory[person(@name=n)[position(@dept="Dept-0", @role=r)]]'))
    salaries = pattern_query(parse_pattern(
        "directory[person(@name=n)[position(@salary=s)]]"))
    projects, who, certain_salaries = engine.certain_answers_batch(
        [source, source, source],
        [nr.query_projects_of("Dept-1"), roles, salaries],
        parallel=3)

    print("\nCertain answers")
    print("  projects registered for Dept-1:", sorted(projects.payload))
    print("  who works in Dept-0 and in which role:", sorted(who.payload))
    print("  (name, salary) pairs that are certain:",
          sorted(certain_salaries.payload), "(salaries are invented nulls)")


if __name__ == "__main__":
    main()
