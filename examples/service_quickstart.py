#!/usr/bin/env python3
"""Quickstart for the serving layer: two settings behind one async service.

Where ``examples/quickstart.py`` compiles one setting into one engine, this
example runs the shape of a long-lived server: a :class:`SettingRegistry`
admitting **two** different exchange settings (the paper's bibliography
example and the Clio-style company scenario), an
:class:`AsyncExchangeService` routing awaitable requests to each setting's
shard by fingerprint, and one mixed-setting batch whose sub-batches execute
concurrently and come back in submission order.

Run with:  python examples/service_quickstart.py
"""

import asyncio

from repro.service import (AsyncExchangeService, SettingRegistry,
                           certain_answers_request, consistency_request)
from repro.workloads import library, nested_relational


async def main() -> None:
    # One registry holds every tenant's setting; compilation is lazy and
    # the compiled set is LRU-bounded (here: at most 8 compiled settings,
    # each with at most 256 cached results — per setting, so tenants
    # cannot evict each other's entries).
    registry = SettingRegistry(max_compiled=8, result_cache_maxsize=256)

    async with AsyncExchangeService(registry, executor="thread",
                                    parallel=4) as service:
        # ------------------------------------------------------------- #
        # 1. Admit two settings; fingerprints are the routing keys.
        # ------------------------------------------------------------- #
        bib = library.library_setting()
        company = nested_relational.company_setting()
        bib_key = service.register(bib)
        company_key = service.register(company)
        print(f"bibliography setting : {bib_key[:16]}…")
        print(f"company setting      : {company_key[:16]}…")

        # ------------------------------------------------------------- #
        # 2. Awaitable single requests, routed by fingerprint.
        # ------------------------------------------------------------- #
        print("bib consistent       :",
              (await service.check_consistency(bib_key)).payload)
        print("company consistent   :",
              (await service.check_consistency(company_key)).payload)

        bib_tree = library.generate_source(4, authors_per_book=2, seed=1)
        who_wrote = library.query_writer_of("Book-0")
        answers = await service.certain_answers(bib_key, bib_tree, who_wrote)
        print("writers of Book-0    :", sorted(answers.payload))

        company_tree = nested_relational.generate_company_source(
            2, employees_per_dept=2, projects_per_dept=2)
        projects = nested_relational.query_projects_of("Dept-0")
        answers = await service.certain_answers(company_key, company_tree,
                                                projects)
        print("projects of Dept-0   :", sorted(answers.payload))

        # ------------------------------------------------------------- #
        # 3. One mixed-setting batch: the router splits it into per-shard
        #    sub-batches, runs them concurrently, reassembles in order.
        # ------------------------------------------------------------- #
        mixed = [
            certain_answers_request(bib_key, bib_tree, who_wrote),
            consistency_request(company_key),
            certain_answers_request(company_key, company_tree, projects),
            consistency_request(bib_key),
            certain_answers_request(bib_key, bib_tree, who_wrote),  # repeat
        ]
        slots = await service.batch(mixed)
        for slot, request in zip(slots, mixed):
            label = "bib" if slot.fingerprint == bib_key else "company"
            print(f"batch[{slot.index}] {label:7s} {request.op:15s} "
                  f"ok={slot.ok}")

        # The repeated request was served from the shard's result cache.
        stats = service.stats()
        shard = stats["shards"][bib_key]
        print(f"bib shard            : {shard['requests']} requests, "
              f"{shard['result_cache_hits']} result-cache hits")
        print(f"registry             : {stats['registry']}")


if __name__ == "__main__":
    asyncio.run(main())
