#!/usr/bin/env python3
"""Quickstart for the serving layer: two settings behind one async service.

Where ``examples/quickstart.py`` compiles one setting into one engine, this
example runs the shape of a long-lived server: a :class:`SettingRegistry`
admitting **two** different exchange settings (the paper's bibliography
example and the Clio-style company scenario), an
:class:`AsyncExchangeService` routing awaitable requests to each setting's
shard by fingerprint, and one mixed-setting batch whose sub-batches execute
concurrently and come back in submission order.

Run with:  python examples/service_quickstart.py
"""

import asyncio
import subprocess
import sys

from repro.service import (AsyncExchangeService, QuotaExceededError,
                           QuotaPolicy, SettingRegistry,
                           certain_answers_request, consistency_request)
from repro.service.client import ServiceClient
from repro.workloads import library, nested_relational


async def main() -> None:
    # One registry holds every tenant's setting; compilation is lazy and
    # the compiled set is LRU-bounded (here: at most 8 compiled settings,
    # each with at most 256 cached results — per setting, so tenants
    # cannot evict each other's entries).
    registry = SettingRegistry(max_compiled=8, result_cache_maxsize=256)

    async with AsyncExchangeService(registry, executor="thread",
                                    parallel=4) as service:
        # ------------------------------------------------------------- #
        # 1. Admit two settings; fingerprints are the routing keys.
        # ------------------------------------------------------------- #
        bib = library.library_setting()
        company = nested_relational.company_setting()
        bib_key = service.register(bib)
        company_key = service.register(company)
        print(f"bibliography setting : {bib_key[:16]}…")
        print(f"company setting      : {company_key[:16]}…")

        # ------------------------------------------------------------- #
        # 2. Awaitable single requests, routed by fingerprint.
        # ------------------------------------------------------------- #
        print("bib consistent       :",
              (await service.check_consistency(bib_key)).payload)
        print("company consistent   :",
              (await service.check_consistency(company_key)).payload)

        bib_tree = library.generate_source(4, authors_per_book=2, seed=1)
        who_wrote = library.query_writer_of("Book-0")
        answers = await service.certain_answers(bib_key, bib_tree, who_wrote)
        print("writers of Book-0    :", sorted(answers.payload))

        company_tree = nested_relational.generate_company_source(
            2, employees_per_dept=2, projects_per_dept=2)
        projects = nested_relational.query_projects_of("Dept-0")
        answers = await service.certain_answers(company_key, company_tree,
                                                projects)
        print("projects of Dept-0   :", sorted(answers.payload))

        # ------------------------------------------------------------- #
        # 3. One mixed-setting batch: the router splits it into per-shard
        #    sub-batches, runs them concurrently, reassembles in order.
        # ------------------------------------------------------------- #
        mixed = [
            certain_answers_request(bib_key, bib_tree, who_wrote),
            consistency_request(company_key),
            certain_answers_request(company_key, company_tree, projects),
            consistency_request(bib_key),
            certain_answers_request(bib_key, bib_tree, who_wrote),  # repeat
        ]
        slots = await service.batch(mixed)
        for slot, request in zip(slots, mixed):
            label = "bib" if slot.fingerprint == bib_key else "company"
            print(f"batch[{slot.index}] {label:7s} {request.op:15s} "
                  f"ok={slot.ok}")

        # The repeated request was served from the shard's result cache.
        stats = service.stats()
        shard = stats["shards"][bib_key]
        print(f"bib shard            : {shard['requests']} requests, "
              f"{shard['result_cache_hits']} result-cache hits")
        print(f"registry             : {stats['registry']}")


async def quota_demo() -> None:
    """Admission control: over-quota slots fail fast, typed, in order —
    they never queue and never touch their admitted neighbours."""
    bib = library.library_setting()
    tree = library.generate_source(4, authors_per_book=2, seed=1)
    query = library.query_writer_of("Book-0")
    async with AsyncExchangeService(
            executor="thread", parallel=4,
            quota=QuotaPolicy(max_in_flight=2)) as service:
        # prewarm=True compiles ahead, so even the first request below
        # pays no compile latency (see prewarm_* in the registry stats).
        bib_key = service.register(bib, prewarm=True)
        slots = await service.batch(
            [certain_answers_request(bib_key, tree, query)] * 4)
        for slot in slots:
            verdict = ("rejected: " + str(slot.error)[:40] + "…"
                       if slot.rejected else
                       f"ok, {len(slot.result.payload)} answers")
            print(f"quota batch[{slot.index}]       : {verdict}")
        # Await-side, the same rejection arrives as a typed exception.
        try:
            await asyncio.gather(
                *(service.certain_answers(bib_key, tree, query)
                  for _ in range(3)))
        except QuotaExceededError as error:
            print(f"await-side rejection : {type(error).__name__} "
                  f"(kind={error.kind}, limit={error.limit})")


async def shard_host_demo() -> None:
    """Multi-process serving: ``executor="host"`` spawns one long-lived
    worker process per requested slot (default: one per core — here two,
    to keep the demo cheap).  Each worker owns a full registry slice, so
    compiled settings and caches stay warm *in the worker* across
    requests; the supervisor routes by fingerprint and restarts crashed
    workers transparently.  The same flag reaches the JSON-lines server
    as ``python -m repro.service.server --workers K``."""
    bib = library.library_setting()
    tree = library.generate_source(4, authors_per_book=2, seed=1)
    query = library.query_writer_of("Book-0")
    async with AsyncExchangeService(executor="host", workers=2) as service:
        bib_key = service.register(bib, prewarm=True)
        answers = await service.certain_answers(bib_key, tree, query)
        print("host-mode answers    :", sorted(answers.payload))
        stats = service.stats()
        pids = [worker["pid"] for worker in stats["host"]["per_worker"]]
        print(f"host workers         : {stats['host']['workers']} "
              f"processes (pids {pids}), "
              f"{stats['host']['worker_restarts']} restarts")


async def traced_request_demo() -> None:
    """Observability: switch tracing on, serve one host-mode request, and
    read the request back as a single span tree crossing the process
    boundary — supervisor spans (admission, executor queueing, the pipe
    round-trip) and worker spans (the chase, the freeze, the compiled-plan
    run) re-parented into one tree.  The same spans drive ``--trace PATH``
    on the server and ``bench_service.py``, the ``trace_dump`` wire op and
    ``python -m repro.obs.report``."""
    from repro.obs import trace
    from repro.obs.report import phase_rows, render_table

    bib = library.library_setting()
    tree = library.generate_source(4, authors_per_book=2, seed=1)
    query = library.query_writer_of("Book-0")
    async with AsyncExchangeService(executor="host", workers=2) as service:
        bib_key = service.register(bib, prewarm=True)
        trace.configure()           # tracing on; off by default (<2% rule)
        try:
            await service.certain_answers(bib_key, tree, query)
        finally:
            trace.disable()
    spans = trace.drain()
    root = next(span for span in spans
                if span["parent"] is None and span["name"] == "service.request")
    request_spans = [span for span in spans
                     if span["trace"] == root["trace"]]
    pids = {span["pid"] for span in request_spans}
    print(f"traced request       : {len(request_spans)} spans across "
          f"{len(pids)} processes, one tree:")
    print(trace.format_trace(request_spans))
    print("per-phase latency    :")
    print(render_table(phase_rows(request_spans)))


def pipelined_client_demo() -> None:
    """The wire-level view: a pipelined client sends a burst of requests
    down one connection and collects replies in completion order."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.service.server", "--port", "0",
         "--max-in-flight", "8"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    try:
        banner = process.stdout.readline().strip()
        host, port = banner.split()[-1].rsplit(":", 1)
        with ServiceClient(host, int(port)) as client:
            bib_key = client.register(library.library_setting(),
                                      prewarm=True)
            # pipeline(): all three requests are on the wire before the
            # first reply is read; results come back in submission order.
            replies = client.pipeline([
                {"op": "consistency", "fingerprint": bib_key},
                {"op": "ping"},
                {"op": "consistency", "fingerprint": bib_key},
            ])
            print(f"pipelined replies    : "
                  f"{[reply['op'] for reply in replies]}")
            client.shutdown()
        process.wait(timeout=30)
    finally:
        if process.poll() is None:
            process.kill()
            process.wait()


if __name__ == "__main__":
    asyncio.run(main())
    asyncio.run(quota_demo())
    asyncio.run(shard_host_demo())
    asyncio.run(traced_request_demo())
    pipelined_client_demo()
