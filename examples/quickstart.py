#!/usr/bin/env python3
"""Quickstart: the paper's running example (Figures 1 and 2, Example 3.4),
served through the engine API.

A bibliography grouped by book is restructured into one grouped by writer;
publication years are unknown and become nulls.  The setting is compiled
once into an :class:`repro.ExchangeEngine`; classification, consistency,
the canonical solution and the two certain-answer queries from the paper's
introduction are then all requests against that engine.  (The legacy
functional API — ``check_consistency``, ``canonical_solution``,
``certain_answers`` — still works and the engine delegates to it; see the
migration note in ROADMAP.md.)

Run with:  python examples/quickstart.py
"""

from repro import DataExchangeSetting, ExchangeEngine, order_tree, parse_dtd, std
from repro.workloads import library


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Schemas: the source and target DTDs of Figure 1 (a) / Figure 2 (a)
    # ------------------------------------------------------------------ #
    source_dtd = parse_dtd("""
        <!ELEMENT db (book*)>
        <!ELEMENT book (author*)>
        <!ATTLIST book title CDATA #REQUIRED>
        <!ELEMENT author EMPTY>
        <!ATTLIST author name CDATA #REQUIRED aff CDATA #REQUIRED>
    """)
    target_dtd = parse_dtd("""
        <!ELEMENT bib (writer*)>
        <!ELEMENT writer (work*)>
        <!ATTLIST writer name CDATA #REQUIRED>
        <!ELEMENT work EMPTY>
        <!ATTLIST work title CDATA #REQUIRED year CDATA #REQUIRED>
    """)

    # ------------------------------------------------------------------ #
    # 2. The STD of Example 3.4, compiled once into an engine
    # ------------------------------------------------------------------ #
    dependency = std(
        "bib[writer(@name=y)[work(@title=x, @year=z)]]",
        "db[book(@title=x)[author(@name=y)]]",
    )
    setting = DataExchangeSetting(source_dtd, target_dtd, [dependency])
    engine = ExchangeEngine(setting)   # NFAs, analyses, routing: all here

    print("Setting classification:", engine.classify().detail)
    consistency = engine.check_consistency()   # strategy="auto" routes to 4.5
    print(f"Consistency: {consistency.payload} "
          f"(strategy: {consistency.strategy}, "
          f"{consistency.elapsed * 1e3:.2f} ms)")
    print()

    # ------------------------------------------------------------------ #
    # 3. The source document of Figure 1 (b)
    # ------------------------------------------------------------------ #
    source = library.figure_1_source()
    print("Source document (Figure 1 b):")
    print(source.to_text())
    print()

    # ------------------------------------------------------------------ #
    # 4. The canonical solution (Figure 2 b): years become nulls
    # ------------------------------------------------------------------ #
    solved = engine.solve(source)
    print("Canonical solution (unordered, cf. Figure 2 b):")
    print(solved.payload.to_text())
    ordered = order_tree(solved.payload, target_dtd)
    print("\nSerialised after ordering (Proposition 5.2):")
    print(ordered.to_xml())
    print()

    # ------------------------------------------------------------------ #
    # 5. Certain answers for the two queries of the introduction.
    #    The engine reuses the compiled setting: no recompilation happens.
    # ------------------------------------------------------------------ #
    who_wrote_cc = library.query_writer_of("Computational Complexity")
    works_1994 = library.query_works_in_year("1994")
    first, second = engine.certain_answers_batch(
        [source, source], [who_wrote_cc, works_1994])
    print('Who is the writer of "Computational Complexity"?',
          sorted(first.payload))
    print("What are the works written in 1994?", sorted(second.payload),
          "(unknown years are nulls — nothing is certain)")
    stats = engine.stats
    print(f"\nEngine cache: {stats['rule_cache_hits']} rule-cache hits, "
          f"{stats['rule_cache_misses']} recompilations since compile.")

    # ------------------------------------------------------------------ #
    # 6. The plan cache: queries are compiled once, evaluated many times.
    #    Each query was lowered to a slot-based plan on first use (a
    #    plan_cache miss) and every later evaluation — here, re-asking the
    #    first question — reuses the compiled plan over a frozen tree
    #    instead of re-interpreting the pattern AST per node.
    # ------------------------------------------------------------------ #
    engine.clear_result_cache()           # force a real (re-)evaluation
    before = engine.stats
    engine.certain_answers(source, who_wrote_cc)
    stats = engine.stats
    print(f"Plan cache: {stats['plan_cache_hits']} hits, "
          f"{stats['plan_cache_misses']} compilations — interpretation is "
          f"paid once per query, not once per (query, node).")

    # ------------------------------------------------------------------ #
    # 7. Evaluation strategies: each plan run picks structural joins
    #    (seeded from the snapshot's per-label indexes, interval joins
    #    over the pre/post plane) or the bottom-up recurrence, whichever
    #    the selectivity heuristic predicts is cheaper.  The counters
    #    say which strategy actually served the re-asked question.
    # ------------------------------------------------------------------ #
    joins = stats["plan_join_runs"] - before["plan_join_runs"]
    recurrences = (stats["plan_recurrence_runs"]
                   - before["plan_recurrence_runs"])
    print(f"Evaluation strategy for that request: {joins} structural-join "
          f"run(s), {recurrences} recurrence run(s) "
          f"(force either with REPRO_EVAL_STRATEGY=join|recurrence).")


if __name__ == "__main__":
    main()
