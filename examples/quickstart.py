#!/usr/bin/env python3
"""Quickstart: the paper's running example (Figures 1 and 2, Example 3.4).

A bibliography grouped by book is restructured into one grouped by writer;
publication years are unknown and become nulls.  The two queries from the
paper's introduction are then answered with certain-answer semantics.

Run with:  python examples/quickstart.py
"""

from repro import (DataExchangeSetting, XMLTree, certain_answers,
                   check_consistency, classify_setting, canonical_solution,
                   order_tree, parse_dtd, parse_pattern, pattern_query, std)
from repro.workloads import library


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Schemas: the source and target DTDs of Figure 1 (a) / Figure 2 (a)
    # ------------------------------------------------------------------ #
    source_dtd = parse_dtd("""
        <!ELEMENT db (book*)>
        <!ELEMENT book (author*)>
        <!ATTLIST book title CDATA #REQUIRED>
        <!ELEMENT author EMPTY>
        <!ATTLIST author name CDATA #REQUIRED aff CDATA #REQUIRED>
    """)
    target_dtd = parse_dtd("""
        <!ELEMENT bib (writer*)>
        <!ELEMENT writer (work*)>
        <!ATTLIST writer name CDATA #REQUIRED>
        <!ELEMENT work EMPTY>
        <!ATTLIST work title CDATA #REQUIRED year CDATA #REQUIRED>
    """)

    # ------------------------------------------------------------------ #
    # 2. The source-to-target dependency of Example 3.4
    # ------------------------------------------------------------------ #
    dependency = std(
        "bib[writer(@name=y)[work(@title=x, @year=z)]]",
        "db[book(@title=x)[author(@name=y)]]",
    )
    setting = DataExchangeSetting(source_dtd, target_dtd, [dependency])

    report = classify_setting(setting)
    print("Setting classification:", report.summary())
    print("Consistency:", check_consistency(setting).consistent)
    print()

    # ------------------------------------------------------------------ #
    # 3. The source document of Figure 1 (b)
    # ------------------------------------------------------------------ #
    source = library.figure_1_source()
    print("Source document (Figure 1 b):")
    print(source.to_text())
    print()

    # ------------------------------------------------------------------ #
    # 4. The canonical solution (Figure 2 b): years become nulls
    # ------------------------------------------------------------------ #
    result = canonical_solution(setting, source)
    print("Canonical solution (unordered, cf. Figure 2 b):")
    print(result.tree.to_text())
    ordered = order_tree(result.tree, target_dtd)
    print("\nSerialised after ordering (Proposition 5.2):")
    print(ordered.to_xml())
    print()

    # ------------------------------------------------------------------ #
    # 5. Certain answers for the two queries of the introduction
    # ------------------------------------------------------------------ #
    who_wrote_cc = pattern_query(parse_pattern(
        'bib[writer(@name=w)[work(@title="Computational Complexity")]]'))
    outcome = certain_answers(setting, source, who_wrote_cc)
    print('Who is the writer of "Computational Complexity"?',
          sorted(outcome.answers))

    works_1994 = library.query_works_in_year("1994")
    outcome = certain_answers(setting, source, works_1994)
    print("What are the works written in 1994?", sorted(outcome.answers),
          "(unknown years are nulls — nothing is certain)")


if __name__ == "__main__":
    main()
